"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.core import (
    MSEC,
    USEC,
    Process,
    Signal,
    SimulationError,
    Simulator,
)


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3e-6, fired.append, "c")
        sim.schedule(1e-6, fired.append, "a")
        sim.schedule(2e-6, fired.append, "b")
        sim.run_all()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self, sim):
        fired = []
        for name in "abc":
            sim.schedule(1e-6, fired.append, name)
        sim.run_all()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(5e-6, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [pytest.approx(5e-6)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1e-6, fired.append, "x")
        event.cancel()
        sim.run_all()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1e-6, lambda: None)
        event.cancel()
        event.cancel()
        sim.run_all()

    def test_at_schedules_absolute_time(self, sim):
        sim.schedule(2e-6, lambda: None)
        sim.run_all()
        seen = []
        sim.at(10e-6, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [pytest.approx(10e-6)]

    def test_run_until_stops_and_advances_clock(self, sim):
        fired = []
        sim.schedule(1e-3, fired.append, "early")
        sim.schedule(5e-3, fired.append, "late")
        sim.run(until=2e-3)
        assert fired == ["early"]
        assert sim.now == pytest.approx(2e-3)
        sim.run(until=10e-3)
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_even_when_idle(self, sim):
        sim.run(until=1.0)
        assert sim.now == pytest.approx(1.0)

    def test_max_events_limit(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(i * 1e-6, fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def first():
            sim.schedule(1e-6, fired.append, "second")

        sim.schedule(1e-6, first)
        sim.run_all()
        assert fired == ["second"]

    def test_processed_events_counter(self, sim):
        for _ in range(5):
            sim.schedule(1e-6, lambda: None)
        sim.run_all()
        assert sim.processed_events == 5

    def test_run_all_backstop(self, sim):
        def rearm():
            sim.schedule(1e-9, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run_all(limit=1000)


class TestProcesses:
    def test_process_sleeps(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 5e-6
            log.append(sim.now)

        sim.spawn(proc())
        sim.run_all()
        assert log == [pytest.approx(0.0), pytest.approx(5e-6)]

    def test_process_result(self, sim):
        def proc():
            yield 1e-6
            return 42

        p = sim.spawn(proc())
        sim.run_all()
        assert p.done
        assert p.result == 42

    def test_process_joins_another(self, sim):
        def child():
            yield 3e-6
            return "done"

        results = []

        def parent():
            value = yield sim.spawn(child())
            results.append((sim.now, value))

        sim.spawn(parent())
        sim.run_all()
        assert results == [(pytest.approx(3e-6), "done")]

    def test_join_already_finished_process(self, sim):
        def child():
            return "early"
            yield  # pragma: no cover

        p = sim.spawn(child())
        sim.run(until=1e-6)
        assert p.done

        got = []

        def parent():
            value = yield p
            got.append(value)

        sim.spawn(parent())
        sim.run_all()
        assert got == ["early"]

    def test_yield_none_reschedules_same_time(self, sim):
        times = []

        def proc():
            times.append(sim.now)
            yield None
            times.append(sim.now)

        sim.spawn(proc())
        sim.run_all()
        assert times[0] == times[1]

    def test_negative_yield_raises(self, sim):
        def proc():
            yield -1.0

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_all()

    def test_unsupported_yield_raises(self, sim):
        def proc():
            yield "nope"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run_all()

    def test_interrupt_stops_process(self, sim):
        log = []

        def proc():
            yield 1e-3
            log.append("should not happen")

        p = sim.spawn(proc())
        sim.run(until=1e-6)
        p.interrupt()
        sim.run_all()
        assert log == []
        assert p.done


class TestSignals:
    def test_signal_wakes_waiter_with_value(self, sim):
        signal = Signal(sim)
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        sim.spawn(waiter())
        sim.schedule(2e-6, signal.set, "hello")
        sim.run_all()
        assert got == [(pytest.approx(2e-6), "hello")]

    def test_set_signal_does_not_block(self, sim):
        signal = Signal(sim)
        signal.set("v")
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        sim.spawn(waiter())
        sim.run_all()
        assert got == ["v"]

    def test_auto_reset_latches_one_wakeup(self, sim):
        """Doorbell semantics: a set with no waiter wakes the next waiter."""
        signal = Signal(sim, auto_reset=True)
        signal.set()
        wakes = []

        def waiter():
            yield signal
            wakes.append(sim.now)
            yield signal  # no second set: blocks forever
            wakes.append("never")

        sim.spawn(waiter())
        sim.run_all()
        assert wakes == [pytest.approx(0.0)]

    def test_auto_reset_wakes_each_set(self, sim):
        signal = Signal(sim, auto_reset=True)
        wakes = []

        def waiter():
            while True:
                yield signal
                wakes.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(1e-6, signal.set)
        sim.schedule(2e-6, signal.set)
        sim.run_all()
        assert len(wakes) == 2

    def test_multiple_waiters_all_wake(self, sim):
        signal = Signal(sim)
        woken = []

        def waiter(name):
            yield signal
            woken.append(name)

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.schedule(1e-6, signal.set)
        sim.run_all()
        assert sorted(woken) == ["a", "b"]


class TestPeriodicTask:
    def test_fires_at_interval(self, sim):
        times = []
        task = sim.every(1 * MSEC, lambda: times.append(sim.now))
        sim.run(until=5.5 * MSEC)
        task.cancel()
        assert len(times) == 5
        assert times[0] == pytest.approx(1 * MSEC)

    def test_cancel_stops_firing(self, sim):
        times = []
        task = sim.every(1 * MSEC, lambda: times.append(sim.now))
        sim.run(until=2.5 * MSEC)
        task.cancel()
        sim.run(until=10 * MSEC)
        assert len(times) == 2

    def test_start_after_override(self, sim):
        times = []
        sim.every(1 * MSEC, lambda: times.append(sim.now), start_after=0.0)
        sim.run(until=2.5 * MSEC)
        assert times[0] == pytest.approx(0.0)


class TestPeriodicJitter:
    """Jitter offsets each fire from an unjittered base timeline.

    The seed implementation added ``uniform(0, jitter)`` to every period, so
    the mean period was ``interval + jitter/2`` and the drift against the
    nominal timeline was unbounded.  These tests fail on that behaviour.
    """

    def test_jitter_spreads_fire_times(self):
        import numpy as np
        from repro.sim.core import MSEC, Simulator

        sim = Simulator()
        times = []
        sim.every(1 * MSEC, lambda: times.append(sim.now), jitter=0.5 * MSEC,
                  rng=np.random.default_rng(0))
        sim.run(until=200 * MSEC)
        gaps = np.diff(times)
        # Fixed-base jitter: consecutive gaps vary within +-jitter...
        assert gaps.min() >= 0.5 * MSEC - 1e-9
        assert gaps.max() <= 1.5 * MSEC + 1e-9
        assert gaps.max() - gaps.min() > 0.1 * MSEC   # and it does vary

    def test_mean_period_converges_to_interval(self):
        import numpy as np
        from repro.sim.core import MSEC, Simulator

        sim = Simulator()
        times = []
        sim.every(1 * MSEC, lambda: times.append(sim.now), jitter=0.5 * MSEC,
                  rng=np.random.default_rng(1))
        sim.run(until=1000 * MSEC)
        gaps = np.diff(times)
        # The seed bug inflated the mean period to interval + jitter/2
        # (~1.25 ms here); the fixed-base schedule keeps it at ~1 ms.
        assert abs(gaps.mean() - 1 * MSEC) < 0.02 * MSEC

    def test_fires_never_before_base_tick_and_drift_is_bounded(self):
        import numpy as np
        from repro.sim.core import MSEC, Simulator

        sim = Simulator()
        times = []
        jitter = 0.5 * MSEC
        sim.every(1 * MSEC, lambda: times.append(sim.now), jitter=jitter,
                  rng=np.random.default_rng(2))
        sim.run(until=500 * MSEC)
        for n, t in enumerate(times, start=1):
            base = n * 1 * MSEC
            assert base - 1e-12 <= t <= base + jitter + 1e-12
