"""Edge-case and overload tests across the datapath."""

from dataclasses import replace

import pytest

from repro.config import DatapathConfig, OasisConfig
from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.net.transport import UdpSocket
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def tiny_channel_config(slots=16):
    return OasisConfig(
        datapath=replace(OasisConfig().datapath, channel_slots=slots)
    )


class TestChannelOverload:
    def test_tiny_rings_still_deliver_all_traffic(self):
        """With 16-slot rings the frontend hits ChannelFull and must retry;
        nothing may be lost or leaked."""
        pod = CXLPod(config=tiny_channel_config(16), mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
        EchoServer(pod.sim, inst)
        client = pod.add_external_client(ip=CLIENT_IP)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=50_000)
        ec.start(0.02)
        pod.run(0.1)
        # UDP may lose a few under overload, but the vast majority arrives
        # and every TX buffer is eventually freed.
        assert ec.stats.received >= ec.stats.sent * 0.95
        frontend = pod.frontends[h1.name]
        assert len(frontend._tx_pending) == 0

    def test_burst_larger_than_ring(self):
        pod = CXLPod(config=tiny_channel_config(16), mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
        got = []
        inst.add_handler(lambda f: got.append(f.seq))
        client = pod.add_external_client(ip=CLIENT_IP)
        sock = UdpSocket(pod.sim, client, port=99)
        for i in range(64):   # 4x the ring size, all at once
            sock.sendto(b"x", SERVER_IP, 7, seq=i)
        pod.run(0.05)
        assert len(got) == 64


class TestInstanceEdgeCases:
    def test_tx_area_exhaustion_drops_gracefully(self):
        config = OasisConfig(
            datapath=replace(OasisConfig().datapath,
                             instance_tx_area_bytes=4096)
        )
        pod = CXLPod(config=config, mode="oasis")
        h0 = pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h0, ip=SERVER_IP, nic=nic)
        from repro.net.packet import Frame

        # Fire a burst far beyond 4 KB of in-flight TX buffers.
        for i in range(64):
            inst.send_frame(Frame(dst_mac=0, src_mac=0, dst_ip=CLIENT_IP,
                                  payload=b"z" * 1000))
        frontend = pod.frontends[h0.name]
        assert frontend.tx_no_buffer > 0        # drops counted, no crash
        pod.run(0.01)

    def test_duplicate_instance_ip_rejected(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        pod.add_nic(h0)
        pod.add_instance(h0, ip=SERVER_IP)
        from repro.errors import AllocationError, LeaseError

        with pytest.raises((AllocationError, LeaseError)):
            pod.add_instance(h0, ip=SERVER_IP)

    def test_two_instances_share_one_nic(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        ip_a = make_ip(10, 0, 0, 1)
        ip_b = make_ip(10, 0, 0, 2)
        inst_a = pod.add_instance(h1, ip=ip_a, nic=nic)
        inst_b = pod.add_instance(h1, ip=ip_b, nic=nic)
        EchoServer(pod.sim, inst_a)
        EchoServer(pod.sim, inst_b)
        client = pod.add_external_client(ip=CLIENT_IP)
        ec_a = EchoClient(pod.sim, client, ip_a, rate_pps=5000, port=20_001)
        ec_b = EchoClient(pod.sim, client, ip_b, rate_pps=5000, port=20_002)
        ec_a.start(0.01)
        ec_b.start(0.01)
        pod.run(0.03)
        # Flow tagging demultiplexes both instances on the shared NIC.
        assert ec_a.stats.received == ec_a.stats.sent > 0
        assert ec_b.stats.received == ec_b.stats.sent > 0
        assert inst_a.rx_frames == ec_a.stats.sent
        assert inst_b.rx_frames == ec_b.stats.sent

    def test_instances_on_three_hosts_share_one_nic(self):
        """The paper's headline configuration: every 3 hosts one NIC."""
        pod = CXLPod(mode="oasis")
        hosts = [pod.add_host() for _ in range(3)]
        nic = pod.add_nic(hosts[0])
        clients = []
        for i, host in enumerate(hosts):
            ip = make_ip(10, 0, 0, 10 + i)
            inst = pod.add_instance(host, ip=ip, nic=nic)
            EchoServer(pod.sim, inst)
            endpoint = pod.add_external_client(ip=make_ip(10, 0, 9, 10 + i))
            ec = EchoClient(pod.sim, endpoint, ip, rate_pps=3000)
            ec.start(0.01)
            clients.append(ec)
        pod.run(0.04)
        for ec in clients:
            assert ec.stats.received == ec.stats.sent > 0


class TestCliEntrypoint:
    def test_help_lists_experiments(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table3" in out

    def test_unknown_experiment_errors(self, capsys):
        from repro.__main__ import main

        assert main(["nonsense"]) == 2

    def test_runs_single_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestRunnerJsonDump:
    def test_jsonable_handles_numpy_and_objects(self):
        import numpy as np
        from repro.experiments.runner import _jsonable

        class Obj:
            def __init__(self):
                self.x = np.float64(1.5)
                self.arr = np.arange(3)
                self._hidden = "skip"

        out = _jsonable({"a": [Obj()], "b": np.int64(2), (1, 2): None})
        assert out["a"][0]["x"] == 1.5
        assert out["a"][0]["arr"] == [0, 1, 2]
        assert "_hidden" not in out["a"][0]
        assert out["b"] == 2
        assert out["(1, 2)"] is None
