"""Tests for the Figure 6 virtual-time microbenchmark.

These assert the *shape* of the paper's result: the strict throughput
ordering of the designs, sub-microsecond idle latency for the Oasis design,
and the latency gap between invalidate-consumed and invalidate-prefetched at
the 14 MOp/s target load.
"""

import pytest

from repro.channel.microbench import ChannelMicrobench, sweep_designs

SLOTS = 2048          # smaller ring, faster tests; >= 3 laps at N below
N = 8000


@pytest.fixture(scope="module")
def saturation():
    results = {}
    for design in ("bypass-cache", "naive-prefetch", "invalidate-consumed",
                   "invalidate-prefetched"):
        results[design] = ChannelMicrobench(design, slots=SLOTS).run(N)
    return results


class TestSaturationThroughput:
    def test_bypass_lands_near_3_mops(self, saturation):
        assert 2.0 <= saturation["bypass-cache"].achieved_mops <= 4.5

    def test_naive_prefetch_below_target(self, saturation):
        """② is 2-4x the baseline but well below the 14 MOp/s target."""
        mops = saturation["naive-prefetch"].achieved_mops
        assert saturation["bypass-cache"].achieved_mops * 1.5 < mops < 14.0

    def test_invalidate_consumed_unlocks_order_of_magnitude(self, saturation):
        ratio = (saturation["invalidate-consumed"].achieved_mops
                 / saturation["naive-prefetch"].achieved_mops)
        assert ratio > 3.0

    def test_oasis_design_exceeds_target(self, saturation):
        """④ must clear the 14 MOp/s end-to-end requirement comfortably."""
        assert saturation["invalidate-prefetched"].achieved_mops > 28.0

    def test_strict_ordering(self, saturation):
        b = saturation["bypass-cache"].achieved_mops
        n = saturation["naive-prefetch"].achieved_mops
        c = saturation["invalidate-consumed"].achieved_mops
        p = saturation["invalidate-prefetched"].achieved_mops
        assert b < n < c
        assert p == pytest.approx(c, rel=0.25)


class TestLatency:
    def test_oasis_idle_latency_sub_microsecond(self):
        r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS).run(
            2000, interval_ns=1000.0)
        assert 0.3 <= r.latency_p50_us <= 1.0   # paper: ~0.6 us

    def test_bypass_idle_latency_similar(self):
        r = ChannelMicrobench("bypass-cache", slots=SLOTS).run(
            2000, interval_ns=1000.0)
        assert 0.3 <= r.latency_p50_us <= 1.5

    def test_invalidate_consumed_latency_penalty_at_target_load(self):
        """③ pays an extra invalidate+miss round trip per message at
        moderate load; ④ does not (the Figure 6 latency story)."""
        inv_c = ChannelMicrobench("invalidate-consumed", slots=SLOTS).run(
            3000, interval_ns=1e3 / 14)
        inv_p = ChannelMicrobench("invalidate-prefetched", slots=SLOTS).run(
            3000, interval_ns=1e3 / 14)
        assert inv_c.latency_p50_us > 1.5 * inv_p.latency_p50_us
        assert inv_p.latency_p50_us < 1.2

    def test_open_loop_tracks_offered_load(self):
        r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS).run(
            3000, interval_ns=1e3 / 4)   # 4 MOp/s
        assert r.achieved_mops == pytest.approx(4.0, rel=0.15)


class TestHarness:
    def test_result_fields(self):
        r = ChannelMicrobench("bypass-cache", slots=SLOTS).run(1000)
        assert r.messages > 0
        assert r.design == "bypass-cache"
        assert r.row()

    def test_sweep_returns_all_designs(self):
        curves = sweep_designs(
            designs=("bypass-cache",), offered_mops=(1.0,), n_messages=1000,
            slots=SLOTS,
        )
        assert set(curves) == {"bypass-cache"}
        assert len(curves["bypass-cache"]) == 2  # 1 load point + saturation

    def test_deterministic(self):
        a = ChannelMicrobench("invalidate-prefetched", slots=SLOTS).run(2000)
        b = ChannelMicrobench("invalidate-prefetched", slots=SLOTS).run(2000)
        assert a.achieved_mops == pytest.approx(b.achieved_mops)
        assert a.latency_p50_us == pytest.approx(b.latency_p50_us)

    def test_prefetch_depth_zero_still_functional(self):
        r = ChannelMicrobench("invalidate-prefetched", slots=SLOTS,
                              prefetch_depth=0).run(2000)
        assert r.messages > 0
