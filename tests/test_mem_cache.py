"""Tests for the non-coherent per-host cache model.

These tests pin down the exact semantics the Oasis datapath is built on:
stale reads across hosts, explicit writeback visibility, prefetch no-ops on
cached lines, and intra-host DMA snooping.
"""

import pytest

from repro.config import CACHE_LINE
from repro.mem.cache import HostCache


class TestBasics:
    def test_read_your_own_write(self, cache_pair):
        a, _ = cache_pair
        a.store(0, b"hello")
        data, _ = a.load(0, 5)
        assert data == b"hello"

    def test_dirty_data_invisible_to_pool(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(0, b"hello")
        assert small_pool.dma_read(0, 5) == bytes(5)

    def test_clwb_publishes_to_pool(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(0, b"hello")
        a.clwb(0)
        assert small_pool.dma_read(0, 5) == b"hello"

    def test_clwb_keeps_line_cached(self, cache_pair):
        a, _ = cache_pair
        a.store(0, b"hello")
        a.clwb(0)
        assert a.contains(0)
        assert not a.is_dirty(0)

    def test_clflush_drops_line(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(0, b"hello")
        a.clflush(0)
        assert not a.contains(0)
        assert small_pool.dma_read(0, 5) == b"hello"  # flushed dirty data

    def test_load_miss_fetches_from_pool(self, cache_pair, small_pool):
        a, _ = cache_pair
        small_pool.dma_write(0, b"pooled")
        data, cost = a.load(0, 6)
        assert data == b"pooled"
        assert cost >= a.timings.cxl_load_ns

    def test_hit_cheaper_than_miss(self, cache_pair, small_pool):
        a, _ = cache_pair
        small_pool.dma_write(0, b"x" * 8)
        _, miss_cost = a.load(0, 8)
        _, hit_cost = a.load(0, 8)
        assert hit_cost < miss_cost

    def test_multi_line_load(self, cache_pair, small_pool):
        a, _ = cache_pair
        data = bytes(range(200))
        small_pool.dma_write(30, data)
        out, _ = a.load(30, 200)
        assert out == data

    def test_full_line_store_skips_rfo(self, cache_pair):
        a, _ = cache_pair
        cost = a.store(0, b"z" * CACHE_LINE)
        assert cost < a.timings.cxl_load_ns  # no read-for-ownership

    def test_partial_store_miss_pays_rfo(self, cache_pair):
        a, _ = cache_pair
        cost = a.store(4, b"z")
        assert cost >= a.timings.cxl_load_ns


class TestNonCoherence:
    """The crux: no coherence across hosts (§3.2)."""

    def test_stale_read_after_remote_write(self, cache_pair, small_pool):
        a, b = cache_pair
        small_pool.dma_write(0, b"old-data")
        b.load(0, 8)                    # B caches the line
        a.store(0, b"new-data")
        a.clwb(0)                       # A publishes new data
        stale, _ = b.load(0, 8)
        assert stale == b"old-data"     # B still sees its cached copy

    def test_invalidation_unblocks_fresh_read(self, cache_pair, small_pool):
        a, b = cache_pair
        small_pool.dma_write(0, b"old-data")
        b.load(0, 8)
        a.store(0, b"new-data")
        a.clwb(0)
        b.clflush(0)
        fresh, _ = b.load(0, 8)
        assert fresh == b"new-data"

    def test_remote_dirty_data_never_visible(self, cache_pair):
        a, b = cache_pair
        a.store(0, b"private")          # never written back
        data, _ = b.load(0, 7)
        assert data == bytes(7)

    def test_prefetch_ignored_when_cached(self, cache_pair, small_pool):
        """The Figure 6 pathology: PREFETCHT0 on a cached line is a no-op."""
        a, b = cache_pair
        small_pool.dma_write(0, b"old")
        b.load(0, 3)
        a.store(0, b"new")
        a.clwb(0)
        issued, _ = b.prefetch(0)
        assert issued is False
        assert b.stats.prefetches_ignored == 1
        data, _ = b.load(0, 3)
        assert data == b"old"           # prefetch did NOT refresh the line

    def test_prefetch_fills_uncached_line(self, cache_pair, small_pool):
        _, b = cache_pair
        small_pool.dma_write(0, b"pooled")
        issued, _ = b.prefetch(0)
        assert issued is True
        data, cost = b.load(0, 6)
        assert data == b"pooled"
        assert cost < b.timings.cxl_load_ns  # served from cache


class TestExplicitOps:
    def test_clwb_clean_line_is_cheap(self, cache_pair, small_pool):
        a, _ = cache_pair
        small_pool.dma_write(0, b"x" * 8)
        a.load(0, 8)
        cost = a.clwb(0)
        assert cost == a.timings.clflush_issue_ns

    def test_fenced_clflush_costs_more(self, cache_pair):
        a, _ = cache_pair
        a.store(0, b"x")
        fenced = a.clflush(0, fenced=True)
        a.store(64, b"x")
        unfenced = a.clflush(64, fenced=False)
        assert fenced > unfenced

    def test_clwb_range_covers_all_lines(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(10, b"q" * 150)
        a.clwb_range(10, 150)
        assert small_pool.dma_read(10, 150) == b"q" * 150

    def test_clflush_range_drops_all_lines(self, cache_pair):
        a, _ = cache_pair
        a.store(0, b"q" * 150)
        a.clflush_range(0, 150)
        assert not a.contains(0)
        assert not a.contains(64)
        assert not a.contains(128)

    def test_mfence_counts(self, cache_pair):
        a, _ = cache_pair
        a.mfence()
        assert a.stats.fences == 1

    def test_drop_all_discards_dirty_data(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(0, b"lost")
        a.drop_all()
        assert small_pool.dma_read(0, 4) == bytes(4)

    def test_writeback_hook_intercepts(self, cache_pair, small_pool):
        a, _ = cache_pair
        captured = []
        a.writeback_hook = lambda idx, data, cat: captured.append((idx, data))
        a.store(0, b"hooked")
        a.clwb(0)
        assert captured and captured[0][0] == 0
        assert captured[0][1][:6] == b"hooked"
        # Pool not yet written (the hook owns the delayed apply).
        assert small_pool.dma_read(0, 6) == bytes(6)


class TestEviction:
    def test_capacity_evicts_lru(self, small_pool):
        cache = HostCache(small_pool, "h", capacity_lines=2)
        cache.store(0, b"a" * 64)
        cache.store(64, b"b" * 64)
        cache.store(128, b"c" * 64)
        assert cache.cached_line_count == 2
        assert not cache.contains(0)
        assert cache.stats.evictions == 1

    def test_eviction_writes_back_dirty_data(self, small_pool):
        cache = HostCache(small_pool, "h", capacity_lines=1)
        cache.store(0, b"a" * 64)
        cache.store(64, b"b" * 64)   # evicts line 0
        assert small_pool.dma_read(0, 64) == b"a" * 64

    def test_dirty_eviction_goes_through_writeback_hook(self, small_pool):
        # The seed wrote dirty evicted lines straight to the pool, bypassing
        # the writeback hook -- so a timing harness modelling posted-write
        # flight time (the Fig 6 microbench) never saw capacity evictions.
        cache = HostCache(small_pool, "h", capacity_lines=1)
        hooked = []
        cache.writeback_hook = lambda idx, data, cat: hooked.append(
            (idx, data, cat))
        cache.store(0, b"a" * 64)
        cache.store(64, b"b" * 64)   # evicts dirty line 0
        assert hooked == [(0, b"a" * 64, "eviction")]
        # The hook owns the delayed apply: the pool must NOT have the data yet.
        assert small_pool.dma_read(0, 64) == bytes(64)
        # The link traffic is still accounted as an eviction write.
        assert small_pool.stats_for("h").write_bytes.get("eviction") == 64

    def test_clean_eviction_skips_writeback_hook(self, small_pool):
        cache = HostCache(small_pool, "h", capacity_lines=1)
        hooked = []
        cache.writeback_hook = lambda idx, data, cat: hooked.append(idx)
        cache.store(0, b"a" * 64)
        cache.clwb(0)                # line 0 now clean
        hooked.clear()
        cache.load(64, 1)            # evicts clean line 0
        assert hooked == []
        assert cache.stats.evictions == 1

    def test_lru_touch_on_access(self, small_pool):
        cache = HostCache(small_pool, "h", capacity_lines=2)
        cache.store(0, b"a" * 64)
        cache.store(64, b"b" * 64)
        cache.load(0, 1)             # touch line 0: now line 1 is LRU
        cache.store(128, b"c" * 64)
        assert cache.contains(0)
        assert not cache.contains(64)


class TestDmaSnoop:
    def test_dma_write_snoop_invalidates_local_copy(self, cache_pair, small_pool):
        a, _ = cache_pair
        small_pool.dma_write(0, b"old")
        a.load(0, 3)
        a.snoop_dma_write(0, 3)
        small_pool.dma_write(0, b"new")
        data, _ = a.load(0, 3)
        assert data == b"new"
        assert a.stats.dma_write_snoop_hits == 1

    def test_dma_read_snoop_flushes_dirty(self, cache_pair, small_pool):
        a, _ = cache_pair
        a.store(0, b"dirty")
        a.snoop_dma_read(0, 5)
        assert small_pool.dma_read(0, 5) == b"dirty"
        assert a.stats.dma_read_snoop_hits == 1

    def test_snoop_miss_costs_nothing(self, cache_pair):
        a, _ = cache_pair
        assert a.snoop_dma_read(0, 64) == 0.0
        assert a.snoop_dma_write(0, 64) == 0.0
