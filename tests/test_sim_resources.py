"""Tests for SimQueue and the RNG factory."""

import numpy as np
import pytest

from repro.sim.core import Simulator
from repro.sim.resources import QueueFull, SimQueue
from repro.sim.rng import RngFactory, derive_seed


class TestSimQueue:
    def test_fifo_order(self, sim):
        q = SimQueue(sim)
        q.put_nowait(1)
        q.put_nowait(2)
        assert q.get_nowait() == 1
        assert q.get_nowait() == 2

    def test_get_blocks_until_put(self, sim):
        q = SimQueue(sim)
        got = []

        def consumer():
            item = yield from q.get()
            got.append((sim.now, item))

        sim.spawn(consumer())
        sim.schedule(5e-6, q.put_nowait, "x")
        sim.run_all()
        assert got == [(pytest.approx(5e-6), "x")]

    def test_bounded_queue_raises_when_full(self, sim):
        q = SimQueue(sim, capacity=2)
        q.put_nowait(1)
        q.put_nowait(2)
        with pytest.raises(QueueFull):
            q.put_nowait(3)
        assert q.dropped == 1

    def test_try_put_counts_drops(self, sim):
        q = SimQueue(sim, capacity=1)
        assert q.try_put(1) is True
        assert q.try_put(2) is False
        assert q.dropped == 1
        assert q.total_put == 1

    def test_drain_empties_queue(self, sim):
        q = SimQueue(sim)
        for i in range(4):
            q.put_nowait(i)
        assert q.drain() == [0, 1, 2, 3]
        assert q.empty

    def test_get_nowait_empty_raises(self, sim):
        q = SimQueue(sim)
        with pytest.raises(IndexError):
            q.get_nowait()

    def test_len_and_full(self, sim):
        q = SimQueue(sim, capacity=2)
        assert not q.full
        q.put_nowait(1)
        q.put_nowait(2)
        assert len(q) == 2
        assert q.full


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_derive_seed_varies_by_name_and_root(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_factory_caches_streams(self):
        factory = RngFactory(7)
        g1 = factory.get("x")
        g2 = factory.get("x")
        assert g1 is g2

    def test_factory_reproducible_across_instances(self):
        a = RngFactory(7).get("x").random(5)
        b = RngFactory(7).get("x").random(5)
        assert np.allclose(a, b)

    def test_fresh_restarts_stream(self):
        factory = RngFactory(7)
        first = factory.get("x").random(3)
        fresh = factory.fresh("x").random(3)
        assert np.allclose(first, fresh)

    def test_streams_independent(self):
        factory = RngFactory(7)
        a = factory.get("a").random(5)
        b = factory.get("b").random(5)
        assert not np.allclose(a, b)
