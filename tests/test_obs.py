"""Tests for the unified observability layer (repro.obs).

Covers the registry's label aggregation and snapshot/delta semantics, the
sim-time scraper, the tracer's Chrome-trace export, and — crucially — that
binding the legacy ad-hoc counters into the registry is observation-only:
Table 3 and Figure 10/11 numbers are identical whether read from the legacy
objects or from the registry.
"""

import json

import numpy as np
import pytest

from repro.mem.cxl import CXLMemoryPool, LinkStats
from repro.obs import (
    MetricsRegistry,
    Sample,
    TelemetryScraper,
    Tracer,
    bindings,
    labels_key,
)
from repro.sim.core import MSEC, Simulator


class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", host="h0", op="read")
        c.inc(3)
        g = reg.gauge("depth", queue="q0")
        g.set(7)
        h = reg.histogram("lat_us", device="nic0")
        h.observe(4.0)
        h.observe(9.0)
        snap = reg.snapshot(time=1.5)
        assert snap.time == 1.5
        assert snap.get("ops", host="h0", op="read") == 3
        assert snap.get("depth", queue="q0") == 7
        assert snap.get("lat_us_count", device="nic0") == 2
        assert snap.get("lat_us_sum", device="nic0") == pytest.approx(13.0)
        assert h.observations == [4.0, 9.0]

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", host="h0")
        b = reg.counter("ops", host="h0")
        assert a is b
        assert reg.counter("ops", host="h1") is not a
        with pytest.raises(TypeError):
            reg.gauge("ops", host="h0")    # kind mismatch

    def test_label_aggregation(self):
        reg = MetricsRegistry()
        reg.counter("bytes", host="h0", direction="read").inc(10)
        reg.counter("bytes", host="h0", direction="write").inc(20)
        reg.counter("bytes", host="h1", direction="read").inc(5)
        snap = reg.snapshot()
        by_host = snap.aggregate("bytes", by=("host",))
        assert by_host == {("h0",): 30.0, ("h1",): 5.0}
        by_dir = snap.aggregate("bytes", by=("direction",))
        assert by_dir == {("read",): 15.0, ("write",): 20.0}
        assert snap.total("bytes") == 35.0

    def test_fn_backed_gauge_reads_live_value(self):
        reg = MetricsRegistry()
        state = {"v": 1.0}
        reg.gauge("live", fn=lambda: state["v"], node="n0")
        assert reg.snapshot().get("live", node="n0") == 1.0
        state["v"] = 42.0
        assert reg.snapshot().get("live", node="n0") == 42.0

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", host="h0")
        c.inc(5)
        first = reg.snapshot(time=1.0)
        c.inc(7)
        reg.counter("ops", host="h1").inc(2)   # appears only in the second
        second = reg.snapshot(time=2.0)
        delta = second.delta_since(first)
        assert delta.get("ops", host="h0") == 7
        assert delta.get("ops", host="h1") == 2

    def test_labels_key_is_canonical(self):
        assert labels_key({"b": 1, "a": 2}) == labels_key({"a": 2, "b": 1})
        s = Sample("x", labels_key({"host": "h0", "op": "r"}), 1.0)
        assert s.label("host") == "h0"
        assert s.label("missing", "d") == "d"


class TestLinkStatsBinding:
    """The registry view of LinkStats must equal the legacy API exactly."""

    def _pool_with_traffic(self):
        pool = CXLMemoryPool(size=1 << 20)
        pool.dma_write(0, b"x" * 128, host="h0", category="payload")
        pool.dma_read(0, 64, host="h0", category="message")
        pool.dma_write(4096, b"y" * 64, host="h1", category="counter")
        return pool

    def test_snapshot_matches_by_category(self):
        pool = self._pool_with_traffic()
        reg = MetricsRegistry()
        bindings.bind_pool(reg, pool)
        snap = reg.snapshot()
        merged = {}
        for stats in pool.link_stats.values():
            for cat, n in stats.by_category().items():
                merged[cat] = merged.get(cat, 0) + n
        assert {cat: v for (cat,), v
                in snap.aggregate("cxl_link_bytes", by=("category",)).items()
                } == merged
        assert snap.total("cxl_link_bytes") == pool.total_traffic()

    def test_delta_matches_legacy_delta_since(self):
        pool = self._pool_with_traffic()
        reg = MetricsRegistry()
        bindings.bind_pool(reg, pool)
        legacy_before = pool.stats_for("h0").snapshot()
        snap_before = reg.snapshot()
        pool.dma_write(0, b"z" * 256, host="h0", category="payload")
        legacy_delta = pool.stats_for("h0").delta_since(legacy_before)
        reg_delta = reg.snapshot().delta_since(snap_before)
        assert reg_delta.get("cxl_link_bytes", host="h0", direction="write",
                             category="payload") == \
            legacy_delta.write_bytes["payload"]


class TestScraper:
    def test_periodic_sampling_under_run(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("ticks")
        sim.every(10 * MSEC, c.inc)
        scraper = TelemetryScraper(sim, reg, period_s=25 * MSEC)
        scraper.start()
        sim.run(until=190 * MSEC)
        assert len(scraper) == 7                    # samples at 25..175 ms
        times, values = scraper.series("ticks")
        assert times == pytest.approx([25 * MSEC * i for i in range(1, 8)])
        # At t=25ms two 10ms ticks fired, at t=175ms seventeen did.
        assert values[0] == 2.0
        assert values[-1] == 17.0

    def test_rates(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        sim.every(10 * MSEC, c.inc, 1000)
        scraper = TelemetryScraper(sim, reg, period_s=100 * MSEC)
        scraper.start()
        sim.run(until=500 * MSEC)
        times, rates = scraper.rates("bytes")
        # 1000 bytes per 10 ms = 100 kB/s, steady state.
        assert rates[-1] == pytest.approx(1e5)

    def test_stop_and_bounded_buffer(self):
        sim = Simulator()
        reg = MetricsRegistry()
        scraper = TelemetryScraper(sim, reg, period_s=MSEC, max_snapshots=5)
        scraper.start()
        sim.run(until=20 * MSEC)
        assert len(scraper) == 5
        assert scraper.dropped > 0
        scraper.stop()
        taken = scraper.samples_taken
        sim.run(until=40 * MSEC)
        assert scraper.samples_taken == taken

    def test_sample_now_respects_buffer_bound(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        scraper = TelemetryScraper(sim, reg, period_s=MSEC, max_snapshots=3)
        for _ in range(10):
            snapshot = scraper.sample_now()
        assert len(scraper) == 3
        # Out-of-band sampling still returns a live snapshot past the cap.
        assert snapshot.get("ops") == 1.0

    def test_ring_eviction_keeps_newest(self):
        sim = Simulator()
        reg = MetricsRegistry()
        scraper = TelemetryScraper(sim, reg, period_s=MSEC, max_snapshots=4)
        scraper.start()
        sim.run(until=20 * MSEC)
        # Oldest snapshots were evicted: the ring holds the last 4 samples
        # (at 16..19 ms) in order, and the drop counter accounts for the rest.
        times = [s.time for s in scraper.snapshots]
        assert times == pytest.approx([t * MSEC for t in (16, 17, 18, 19)])
        assert scraper.dropped == scraper.samples_taken - 4

    def test_rates_across_eviction(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        sim.every(MSEC, c.inc, 100)
        scraper = TelemetryScraper(sim, reg, period_s=10 * MSEC,
                                   max_snapshots=3)
        scraper.start()
        sim.run(until=200 * MSEC)
        times, rates = scraper.rates("bytes")
        # Differencing spans only the retained window but stays correct:
        # 100 bytes/ms steady state.
        assert len(rates) == 2
        assert rates == pytest.approx([1e5, 1e5])

    def test_subscribers_see_every_sample(self):
        sim = Simulator()
        reg = MetricsRegistry()
        c = reg.counter("ticks")
        sim.every(MSEC, c.inc)
        scraper = TelemetryScraper(sim, reg, period_s=MSEC, max_snapshots=2)
        seen = []
        scraper.subscribe(lambda snap: seen.append(snap.time))
        scraper.start()
        sim.run(until=10 * MSEC)
        # The streaming consumer observed all samples, including the ones
        # the bounded ring has already evicted.
        assert len(seen) == scraper.samples_taken
        assert len(seen) > len(scraper)
        assert seen == sorted(seen)

    def test_scraper_self_telemetry_binding(self):
        from repro.obs import bindings

        sim = Simulator()
        reg = MetricsRegistry()
        scraper = TelemetryScraper(sim, reg, period_s=MSEC, max_snapshots=3)
        bindings.bind_scraper(reg, scraper)
        scraper.start()
        sim.run(until=10 * MSEC)
        snap = reg.snapshot(time=sim.now)
        assert snap.get("scraper_samples_taken") == scraper.samples_taken
        assert snap.get("scraper_buffered") == 3
        assert snap.get("scraper_dropped") == scraper.dropped > 0


class TestHistogramPercentiles:
    def _hist(self):
        from repro.obs.metrics import Histogram, labels_key

        return Histogram("lat_us", labels_key({}), help="test",
                         buckets=(1.0, 10.0, float("inf")), keep_raw=True)

    def test_empty_is_nan(self):
        from repro.obs.attribution import _percentile

        hist = self._hist()
        for q in (0.0, 50.0, 99.9):
            assert np.isnan(_percentile(hist, q))

    def test_single_sample_is_that_sample(self):
        from repro.obs.attribution import _percentile

        hist = self._hist()
        hist.observe(4.2)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert _percentile(hist, q) == pytest.approx(4.2)

    def test_all_equal_samples_collapse(self):
        from repro.obs.attribution import _percentile

        hist = self._hist()
        for _ in range(100):
            hist.observe(7.0)
        for q in (50.0, 99.0, 99.9):
            assert _percentile(hist, q) == pytest.approx(7.0)
        assert hist.count == 100
        assert hist.mean == pytest.approx(7.0)


class TestTracer:
    def test_span_and_instant_recording(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.schedule(MSEC, lambda: tracer.instant("tick", category="test"))
        sim.schedule(2 * MSEC, lambda: tracer.begin("work", category="test"))
        sim.schedule(5 * MSEC, lambda: tracer.end("work"))
        sim.run_all()
        (inst,) = tracer.instants(category="test")
        assert inst.ts == pytest.approx(MSEC)
        (span,) = tracer.spans(category="test")
        assert span.dur == pytest.approx(3 * MSEC)

    def test_category_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, categories={"keep"})
        tracer.instant("a", category="keep")
        tracer.instant("b", category="drop")
        tracer.begin("c", category="drop")
        tracer.end("c")
        assert [e.name for e in tracer.events] == ["a"]

    def test_disabled_tracer_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=False)
        tracer.instant("a")
        tracer.span("b", 0.0, 1.0)
        assert tracer.events == []

    def test_chrome_trace_schema(self, tmp_path):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.span("dma", 0.001, 0.0005, category="dma", track="nic0",
                    bytes=512)
        tracer.instant("doorbell", category="channel", track="chan0")
        path = tmp_path / "trace.json"
        count = tracer.export_chrome(str(path))
        records = json.loads(path.read_text())
        assert len(records) == count
        # Metadata: one process_name + one thread_name per track.
        meta = [r for r in records if r["ph"] == "M"]
        assert {r["args"]["name"] for r in meta} == {"oasis-sim", "nic0",
                                                     "chan0"}
        (span,) = [r for r in records if r["ph"] == "X"]
        assert span["ts"] == pytest.approx(1000.0)      # us
        assert span["dur"] == pytest.approx(500.0)
        assert span["args"]["bytes"] == 512
        (inst,) = [r for r in records if r["ph"] == "i"]
        assert inst["s"] == "t"
        for record in records:
            assert {"name", "ph", "pid", "tid"} <= set(record)

    def test_unmatched_end_is_ignored(self):
        tracer = Tracer(Simulator())
        assert tracer.end("never-begun") is None
        assert tracer.events == []


class TestPodIntegration:
    def _echo_pod(self, **client_kwargs):
        from repro.experiments.common import SERVER_IP, build_echo_pod
        from repro.workloads.echo import EchoClient

        pod, inst, client_ep, nic0 = build_echo_pod("oasis", remote=True)
        client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=256,
                            rate_pps=5000.0, metrics=pod.metrics,
                            **client_kwargs)
        return pod, client

    def test_registry_matches_legacy_cxl_traffic(self):
        pod, client = self._echo_pod()
        client.start(0.1)
        pod.run(0.12)
        pod.stop()
        snap = pod.metrics.snapshot(time=pod.sim.now)
        legacy = pod.cxl_traffic_by_category()
        registry = {cat: v for (cat,), v
                    in snap.aggregate("cxl_link_bytes",
                                      by=("category",)).items()}
        assert registry == legacy          # identical, not approximately
        assert legacy                      # and the run did produce traffic

    def test_histogram_observations_equal_legacy_latencies(self):
        pod, client = self._echo_pod()
        client.start(0.1)
        pod.run(0.12)
        pod.stop()
        assert client.stats.latencies_us   # sanity: traffic flowed
        assert client.rtt_hist.observations == client.stats.latencies_us
        assert client.rtt_hist.count == client.stats.received

    def test_scraper_runs_inside_pod(self):
        pod, client = self._echo_pod()
        pod.start_telemetry(period_s=0.02)
        client.start(0.1)
        pod.run(0.12)
        pod.stop()
        assert len(pod.scraper) == 5   # 0.02..0.10 s (until exclusive)
        times, values = pod.scraper.series("cxl_link_bytes")
        assert values[-1] == sum(pod.cxl_traffic_by_category().values())
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_failover_trace_phases_sum_to_interruption(self, tmp_path):
        from repro.experiments import fig13

        path = tmp_path / "failover.json"
        res = fig13.run(duration_s=1.2, rate_pps=3000.0, fail_at_s=0.602,
                        trace_path=str(path))
        assert res["failovers"] == 1
        phases = res["failover_phases_ms"]
        assert set(phases) == {"detect", "report", "process", "reroute"}
        # The traced phases decompose the measured interruption (§3.3.3);
        # the tail of the gap (one client send interval, queue drain) is not
        # a failover phase, hence the ~1 ms tolerance.
        assert res["failover_phase_sum_ms"] == pytest.approx(
            res["interruption_ms"], abs=1.5)
        assert 20.0 <= res["failover_phase_sum_ms"] <= 60.0
        records = json.loads(path.read_text())
        spans = [r for r in records if r.get("ph") == "X"]
        assert len(spans) == 4
        assert sum(s["dur"] for s in spans) / 1e3 == pytest.approx(
            res["failover_phase_sum_ms"])
