"""Property tests: descriptor rings conserve completions under any
interleaving of posts, completions and injected faults.

Hypothesis drives random op sequences against a real :class:`SimNIC` TX path
and a real :class:`SimSSD` submission queue -- including mid-transfer DMA
aborts, media errors and device fail/restore -- and asserts the conservation
contract the Oasis drivers depend on:

* nothing posted is ever lost: every descriptor completes exactly once
  (possibly with an error status);
* nothing completes that was never posted (no duplicates, no phantoms);
* successful completions arrive in post order (the ring is a FIFO; an error
  completion may only overtake work already in flight when the device dies,
  never reorder past it);
* after quiescence the ring is empty.

``CHAOS_MAX_EXAMPLES`` scales the search effort (raised in the nightly
chaos CI job).
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import NICConfig, SSDConfig
from repro.errors import DeviceError
from repro.mem.cxl import CXLMemoryPool
from repro.net.packet import Frame
from repro.net.switch import LearningSwitch
from repro.pcie.nic import TX_STATUS_OK, SimNIC
from repro.pcie.queues import DescriptorRing, NVMeCommand, TxDescriptor
from repro.pcie.ssd import NVME_OP_READ, NVME_OP_WRITE, SimSSD
from repro.sim.core import Simulator, USEC

MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "25"))

CHAOS_SETTINGS = settings(max_examples=MAX_EXAMPLES, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


# -- direct ring semantics -----------------------------------------------------

RingOp = st.one_of(
    st.tuples(st.just("post"), st.integers(0, 1 << 16)),
    st.tuples(st.just("pop"), st.just(0)),
)


class TestDescriptorRingModel:
    @given(st.lists(RingOp, max_size=60), st.integers(1, 8))
    @CHAOS_SETTINGS
    def test_ring_matches_fifo_model(self, ops, depth):
        ring = DescriptorRing(depth, "model")
        model = []
        for op, value in ops:
            if op == "post":
                if len(model) >= depth:
                    try:
                        ring.post(value)
                        assert False, "post succeeded on a full ring"
                    except DeviceError:
                        pass
                else:
                    ring.post(value)
                    model.append(value)
            else:
                if model:
                    assert ring.pop() == model.pop(0)
                else:
                    try:
                        ring.pop()
                        assert False, "pop succeeded on an empty ring"
                    except DeviceError:
                        pass
            assert len(ring) == len(model)
            assert ring.full == (len(model) >= depth)
            assert ring.empty == (not model)
        assert ring.drain() == model


# -- NIC TX path under faults ---------------------------------------------------

NicOp = st.one_of(
    st.tuples(st.just("post"), st.integers(0, 3)),       # payload variant
    st.tuples(st.just("abort"), st.integers(1, 2)),      # arm N DMA aborts
    st.tuples(st.just("fail"), st.just(0)),
    st.tuples(st.just("restore"), st.just(0)),
    st.tuples(st.just("run"), st.integers(1, 50)),       # x10 us
)


def _nic_harness():
    """A bare NIC cabled to an empty switch, DMAing real frames from a pool."""
    from repro.config import OasisConfig
    from repro.host.host import Host

    sim = Simulator()
    pool = CXLMemoryPool()
    host = Host(sim, "h0", pool, OasisConfig(), 0)
    nic = SimNIC(sim, host, mac=0x02_00_00_00_00_01, config=NICConfig())
    nic.connect(LearningSwitch(sim).new_port())
    return sim, host, nic


class TestNicTxConservation:
    @given(st.lists(NicOp, min_size=1, max_size=40))
    @CHAOS_SETTINGS
    def test_every_posted_descriptor_completes_exactly_once(self, ops):
        sim, host, nic = _nic_harness()
        completions = []
        nic.on_tx_complete = lambda c: completions.append(c)

        posted = []
        addr = 1 << 12
        for op, arg in ops:
            if op == "post":
                if nic.failed or nic.tx_ring.full:
                    continue
                frame = Frame(dst_mac=0xFF, src_mac=nic.mac,
                              wire_size=64 + 64 * arg)
                data = frame.pack()
                host.dma_write(addr, data, category="payload")
                desc = TxDescriptor(addr=addr, length=len(data), cookie=len(posted))
                addr += 1 << 12
                nic.post_tx(desc)
                posted.append(desc)
            elif op == "abort":
                nic.inject_dma_abort(arg)
            elif op == "fail":
                if not nic.failed:
                    nic.fail()
            elif op == "restore":
                if nic.failed:
                    nic.restore()
            elif op == "run":
                sim.run(until=sim.now + arg * 10 * USEC)
        if nic.failed:
            nic.restore()
        sim.run(until=sim.now + 0.01)   # quiesce

        # Conservation: exactly one completion per posted descriptor.
        assert len(completions) == len(posted)
        seen = [c.descriptor.cookie for c in completions]
        assert sorted(seen) == list(range(len(posted)))
        # Fence/order: successful completions never reorder -- the cookies of
        # OK completions form an increasing subsequence of post order.
        ok = [c.descriptor.cookie for c in completions
              if c.status == TX_STATUS_OK]
        assert ok == sorted(ok)
        assert nic.tx_ring.empty
        assert nic.tx_completions == len(posted)


# -- SSD submission queue under faults -----------------------------------------

SsdOp = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 63)),      # valid slba
    st.tuples(st.just("write"), st.integers(0, 63)),
    st.tuples(st.just("bad"), st.just(0)),               # out-of-range slba
    st.tuples(st.just("media"), st.integers(1, 2)),
    st.tuples(st.just("fail"), st.just(0)),
    st.tuples(st.just("restore"), st.just(0)),
    st.tuples(st.just("run"), st.integers(1, 40)),       # x25 us
)


class TestSsdCompletionConservation:
    @given(st.lists(SsdOp, min_size=1, max_size=40))
    @CHAOS_SETTINGS
    def test_every_submitted_command_completes_exactly_once(self, ops):
        from repro.config import OasisConfig
        from repro.host.host import Host

        sim = Simulator()
        pool = CXLMemoryPool()
        host = Host(sim, "h0", pool, OasisConfig(), 0)
        ssd = SimSSD(sim, host, SSDConfig())
        completions = []
        ssd.on_completion = lambda c: completions.append(c)

        submitted = 0
        addr = 1 << 16
        for op, arg in ops:
            if op in ("read", "write", "bad"):
                slba = ssd.num_blocks + 10 if op == "bad" else arg
                opcode = NVME_OP_WRITE if op == "write" else NVME_OP_READ
                cmd = NVMeCommand(opcode=opcode, slba=slba, nlb=1, addr=addr,
                                  cid=submitted, cookie=submitted)
                addr += 1 << 13
                try:
                    ssd.submit(cmd)
                except DeviceError:
                    continue   # failed device or full SQ rejects: no tracking
                submitted += 1
            elif op == "media":
                ssd.inject_media_error(arg)
            elif op == "fail":
                if not ssd.failed:
                    ssd.fail()
            elif op == "restore":
                if ssd.failed:
                    ssd.restore()
            elif op == "run":
                sim.run(until=sim.now + arg * 25 * USEC)
        sim.run(until=sim.now + 0.05)   # quiesce

        assert len(completions) == submitted
        cookies = sorted(c.descriptor.cookie for c in completions)
        assert cookies == list(range(submitted))
        assert ssd.sq.empty
        assert ssd.completions == submitted
