"""Deterministic replay: one root seed pins down the whole simulation.

Runs the fig10 echo cell twice with the same root seed and asserts the
metrics report snapshots are byte-identical JSON -- every packet arrival,
cache miss, channel poll and scraped counter replays exactly.  A different
seed must produce a different snapshot (the seed actually reaches the
workload's arrival process).

The chaos-plan tests extend the contract to the fault injector: a (seed,
plan) pair replays the exact fault schedule, workload counters and recovery
counters, which is what makes the artifacts dumped by a failing chaos run
actionable.

The fleet-alert tests extend it to the streaming health pipeline: same
seed, same scrape cadence, same rules -- byte-identical alert sequence
(every fire and clear at the same sim time with the same value).
"""

import json

from repro.experiments.fig10 import run_echo
from repro.faults.chaos import run_chaos


def _snapshot(seed: int) -> dict:
    return run_echo("oasis", packet_size=256, rate_pps=20_000.0,
                    duration_s=0.05, seed=seed)


class TestDeterministicReplay:
    def test_same_seed_byte_identical_report(self):
        a = _snapshot(17)
        b = _snapshot(17)
        assert a["report_json"] == b["report_json"]
        assert a["p50"] == b["p50"] and a["p99"] == b["p99"]

    def test_different_seed_differs(self):
        a = _snapshot(17)
        b = _snapshot(18)
        assert a["report_json"] != b["report_json"]


def _chaos_snapshot(seed: int) -> str:
    """The deterministic slice of a chaos run, as canonical JSON bytes."""
    result = run_chaos(seed=seed, duration_s=0.4, settle_s=0.2,
                       verbose=False)
    return json.dumps({
        "seed": result["seed"],
        "plan": result["plan"],
        "ok": result["ok"],
        "events": result["events"],
        "echo": result["echo"],
        "blockio": result["blockio"],
        "recovery": result["recovery"],
    }, sort_keys=True)


class TestChaosPlanReplay:
    """Same seed + same plan == same fault schedule, byte for byte."""

    def test_same_seed_chaos_run_byte_identical(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(5)
        assert a == b

    def test_different_seed_chaos_run_differs(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(6)
        # Fault windows are drawn from the root seed, so the injected event
        # schedule itself must move.
        assert (json.loads(a)["events"] != json.loads(b)["events"]
                or a != b)


def _fleet_snapshot(seed: int) -> tuple:
    """(alert log, health document) of a seeded echo run, canonical JSON.

    The rule thresholds sit just under the echo workload's steady-state
    device utilization so the run both fires (under load) and clears (after
    the client stops), exercising the full alert state machine.
    """
    from repro.config import OasisConfig
    from repro.experiments.common import SERVER_IP, build_echo_pod
    from repro.obs.fleet import AlertRule
    from repro.workloads.echo import EchoClient

    rules = (AlertRule("hot_device", "device_util", 1e-4, for_s=0.01,
                       clear_below=5e-5),)
    pod, inst, client_ep, _ = build_echo_pod(
        "oasis", remote=True, config=OasisConfig().with_(seed=seed))
    fleet = pod.enable_fleet_telemetry(period_s=0.005, rules=rules)
    client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=256,
                        rate_pps=20_000.0, rng=pod.rng.get("echo-client"),
                        poisson=True, metrics=pod.metrics)
    client.start(0.05)
    pod.run(0.08)
    pod.stop()
    return (json.dumps(fleet.alerts.log_json(), sort_keys=True),
            json.dumps(fleet.view().as_dict(), sort_keys=True))


class TestFleetAlertReplay:
    """Same seed == the same alert sequence, byte for byte."""

    def test_same_seed_alert_log_byte_identical(self):
        log_a, doc_a = _fleet_snapshot(17)
        log_b, doc_b = _fleet_snapshot(17)
        assert log_a == log_b
        assert doc_a == doc_b
        # The sequence is non-trivial: the workload drove a fire AND a clear.
        kinds = {event[3] for event in json.loads(log_a)}
        assert kinds == {"fire", "clear"}

    def test_different_seed_differs(self):
        _, doc_a = _fleet_snapshot(17)
        _, doc_b = _fleet_snapshot(18)
        # Poisson arrivals move with the root seed, so the measured
        # utilization document cannot be identical.
        assert doc_a != doc_b


def _rack_churn_outcome(batch_window_ms: float) -> tuple:
    """One seeded rack run: 24 placements, 8 releases, one failover.

    Returns (final canonical signature, converged, batches, pending).  The
    failure is injected after the churn settles so placement decisions never
    race the failover commit -- batching may only change *when* commands
    replicate, never what the final state is.
    """
    from dataclasses import replace

    from repro.config import OasisConfig
    from repro.core.pod import RackBuilder
    from repro.net.packet import make_ip

    base = OasisConfig()
    config = base.with_(seed=29, failover=replace(
        base.failover, commit_batch_window_ms=batch_window_ms))
    pod = RackBuilder(hosts=8, pools=2, nics_per_host=2, ssds_per_host=0,
                      config=config).build()
    pod.enable_raft(replicas=3)
    pod.run(0.25)
    alloc = pod.allocator
    ips = [make_ip(10, 4, 0, i + 1) for i in range(24)]
    for k, ip in enumerate(ips):
        host = pod.hosts[k % len(pod.hosts)]
        pod.sim.schedule(0.002 * (k + 1), alloc.place_instance,
                         ip, host.name, 0.25)
    for k, ip in enumerate(ips[::3]):
        pod.sim.schedule(0.06 + 0.002 * k, alloc.release_instance, ip, 0.25)

    def _fail_first_device():
        device = alloc.assignments.get(ips[1])
        if device is not None:
            alloc.on_failure_report(device)

    pod.sim.schedule(0.12, _fail_first_device)
    pod.run(0.8)
    outcome = (alloc.state.signature(), alloc.convergence_ok(),
               alloc.batches_proposed, alloc.pending_commands)
    pod.stop()
    return outcome


class TestBatchedCommitReplay:
    """Group commit is a replication transport detail: it must never change
    what the control plane decides, only how the log entries are packed."""

    def test_batching_on_vs_off_identical_final_state(self):
        sig_off, ok_off, batches_off, pending_off = _rack_churn_outcome(0.0)
        sig_on, ok_on, batches_on, pending_on = _rack_churn_outcome(0.3)
        assert sig_on == sig_off
        assert ok_off and ok_on
        assert pending_off == 0 and pending_on == 0
        assert batches_off == 0      # batching disabled: per-command path
        assert batches_on >= 1       # batching enabled: grouped proposals

    def test_batching_replays_byte_identical(self):
        a = _rack_churn_outcome(0.3)
        b = _rack_churn_outcome(0.3)
        assert a == b

    def test_leader_crash_inside_flush_window_converges(self):
        """Flush-window timer regression: commands buffered when their
        shard's leader dies inside the window must survive in the pending
        queue and replicate after re-election (the one-shot timer re-arms;
        nothing is stranded in the batch buffer)."""
        from dataclasses import replace

        from repro.config import OasisConfig
        from repro.core.pod import RackBuilder
        from repro.net.packet import make_ip

        base = OasisConfig()
        config = base.with_(seed=31, failover=replace(
            base.failover, commit_batch_window_ms=5.0))
        pod = RackBuilder(hosts=8, pools=2, nics_per_host=2, ssds_per_host=0,
                          config=config).build()
        pod.enable_raft(replicas=3)
        pod.run(0.25)
        alloc = pod.allocator
        shard = alloc.shards["pool0"]
        leader = shard.leader_node()
        assert leader is not None
        ip_a = make_ip(10, 4, 1, 1)
        ip_b = make_ip(10, 4, 1, 2)
        # Place inside the 5 ms window, then crash the leader before the
        # flush timer fires: the flush finds no leader and must leave the
        # command for the retry loop.
        pod.sim.schedule(0.001, alloc.place_instance,
                         ip_a, pod.hosts[0].name, 0.25)
        pod.sim.schedule(0.003, leader.crash)
        pod.run(0.9)   # election timeout + retry windows
        assert shard.pending_commands == 0
        assert shard.assignments[ip_a] is not None
        # Second wave after the first flush: the one-shot timer re-arms.
        alloc.place_instance(ip_b, pod.hosts[1].name, 0.25)
        pod.run(0.3)
        assert shard.pending_commands == 0
        assert shard.batches_proposed >= 1
        leader.restart()
        pod.run(0.4)
        assert alloc.convergence_ok()
        pod.stop()
