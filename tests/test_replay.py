"""Deterministic replay: one root seed pins down the whole simulation.

Runs the fig10 echo cell twice with the same root seed and asserts the
metrics report snapshots are byte-identical JSON -- every packet arrival,
cache miss, channel poll and scraped counter replays exactly.  A different
seed must produce a different snapshot (the seed actually reaches the
workload's arrival process).
"""

from repro.experiments.fig10 import run_echo


def _snapshot(seed: int) -> dict:
    return run_echo("oasis", packet_size=256, rate_pps=20_000.0,
                    duration_s=0.05, seed=seed)


class TestDeterministicReplay:
    def test_same_seed_byte_identical_report(self):
        a = _snapshot(17)
        b = _snapshot(17)
        assert a["report_json"] == b["report_json"]
        assert a["p50"] == b["p50"] and a["p99"] == b["p99"]

    def test_different_seed_differs(self):
        a = _snapshot(17)
        b = _snapshot(18)
        assert a["report_json"] != b["report_json"]
