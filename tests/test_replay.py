"""Deterministic replay: one root seed pins down the whole simulation.

Runs the fig10 echo cell twice with the same root seed and asserts the
metrics report snapshots are byte-identical JSON -- every packet arrival,
cache miss, channel poll and scraped counter replays exactly.  A different
seed must produce a different snapshot (the seed actually reaches the
workload's arrival process).

The chaos-plan tests extend the contract to the fault injector: a (seed,
plan) pair replays the exact fault schedule, workload counters and recovery
counters, which is what makes the artifacts dumped by a failing chaos run
actionable.
"""

import json

from repro.experiments.fig10 import run_echo
from repro.faults.chaos import run_chaos


def _snapshot(seed: int) -> dict:
    return run_echo("oasis", packet_size=256, rate_pps=20_000.0,
                    duration_s=0.05, seed=seed)


class TestDeterministicReplay:
    def test_same_seed_byte_identical_report(self):
        a = _snapshot(17)
        b = _snapshot(17)
        assert a["report_json"] == b["report_json"]
        assert a["p50"] == b["p50"] and a["p99"] == b["p99"]

    def test_different_seed_differs(self):
        a = _snapshot(17)
        b = _snapshot(18)
        assert a["report_json"] != b["report_json"]


def _chaos_snapshot(seed: int) -> str:
    """The deterministic slice of a chaos run, as canonical JSON bytes."""
    result = run_chaos(seed=seed, duration_s=0.4, settle_s=0.2,
                       verbose=False)
    return json.dumps({
        "seed": result["seed"],
        "plan": result["plan"],
        "ok": result["ok"],
        "events": result["events"],
        "echo": result["echo"],
        "blockio": result["blockio"],
        "recovery": result["recovery"],
    }, sort_keys=True)


class TestChaosPlanReplay:
    """Same seed + same plan == same fault schedule, byte for byte."""

    def test_same_seed_chaos_run_byte_identical(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(5)
        assert a == b

    def test_different_seed_chaos_run_differs(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(6)
        # Fault windows are drawn from the root seed, so the injected event
        # schedule itself must move.
        assert (json.loads(a)["events"] != json.loads(b)["events"]
                or a != b)
