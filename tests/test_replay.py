"""Deterministic replay: one root seed pins down the whole simulation.

Runs the fig10 echo cell twice with the same root seed and asserts the
metrics report snapshots are byte-identical JSON -- every packet arrival,
cache miss, channel poll and scraped counter replays exactly.  A different
seed must produce a different snapshot (the seed actually reaches the
workload's arrival process).

The chaos-plan tests extend the contract to the fault injector: a (seed,
plan) pair replays the exact fault schedule, workload counters and recovery
counters, which is what makes the artifacts dumped by a failing chaos run
actionable.

The fleet-alert tests extend it to the streaming health pipeline: same
seed, same scrape cadence, same rules -- byte-identical alert sequence
(every fire and clear at the same sim time with the same value).
"""

import json

from repro.experiments.fig10 import run_echo
from repro.faults.chaos import run_chaos


def _snapshot(seed: int) -> dict:
    return run_echo("oasis", packet_size=256, rate_pps=20_000.0,
                    duration_s=0.05, seed=seed)


class TestDeterministicReplay:
    def test_same_seed_byte_identical_report(self):
        a = _snapshot(17)
        b = _snapshot(17)
        assert a["report_json"] == b["report_json"]
        assert a["p50"] == b["p50"] and a["p99"] == b["p99"]

    def test_different_seed_differs(self):
        a = _snapshot(17)
        b = _snapshot(18)
        assert a["report_json"] != b["report_json"]


def _chaos_snapshot(seed: int) -> str:
    """The deterministic slice of a chaos run, as canonical JSON bytes."""
    result = run_chaos(seed=seed, duration_s=0.4, settle_s=0.2,
                       verbose=False)
    return json.dumps({
        "seed": result["seed"],
        "plan": result["plan"],
        "ok": result["ok"],
        "events": result["events"],
        "echo": result["echo"],
        "blockio": result["blockio"],
        "recovery": result["recovery"],
    }, sort_keys=True)


class TestChaosPlanReplay:
    """Same seed + same plan == same fault schedule, byte for byte."""

    def test_same_seed_chaos_run_byte_identical(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(5)
        assert a == b

    def test_different_seed_chaos_run_differs(self):
        a = _chaos_snapshot(5)
        b = _chaos_snapshot(6)
        # Fault windows are drawn from the root seed, so the injected event
        # schedule itself must move.
        assert (json.loads(a)["events"] != json.loads(b)["events"]
                or a != b)


def _fleet_snapshot(seed: int) -> tuple:
    """(alert log, health document) of a seeded echo run, canonical JSON.

    The rule thresholds sit just under the echo workload's steady-state
    device utilization so the run both fires (under load) and clears (after
    the client stops), exercising the full alert state machine.
    """
    from repro.config import OasisConfig
    from repro.experiments.common import SERVER_IP, build_echo_pod
    from repro.obs.fleet import AlertRule
    from repro.workloads.echo import EchoClient

    rules = (AlertRule("hot_device", "device_util", 1e-4, for_s=0.01,
                       clear_below=5e-5),)
    pod, inst, client_ep, _ = build_echo_pod(
        "oasis", remote=True, config=OasisConfig().with_(seed=seed))
    fleet = pod.enable_fleet_telemetry(period_s=0.005, rules=rules)
    client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=256,
                        rate_pps=20_000.0, rng=pod.rng.get("echo-client"),
                        poisson=True, metrics=pod.metrics)
    client.start(0.05)
    pod.run(0.08)
    pod.stop()
    return (json.dumps(fleet.alerts.log_json(), sort_keys=True),
            json.dumps(fleet.view().as_dict(), sort_keys=True))


class TestFleetAlertReplay:
    """Same seed == the same alert sequence, byte for byte."""

    def test_same_seed_alert_log_byte_identical(self):
        log_a, doc_a = _fleet_snapshot(17)
        log_b, doc_b = _fleet_snapshot(17)
        assert log_a == log_b
        assert doc_a == doc_b
        # The sequence is non-trivial: the workload drove a fire AND a clear.
        kinds = {event[3] for event in json.loads(log_a)}
        assert kinds == {"fire", "clear"}

    def test_different_seed_differs(self):
        _, doc_a = _fleet_snapshot(17)
        _, doc_b = _fleet_snapshot(18)
        # Poisson arrivals move with the root seed, so the measured
        # utilization document cannot be identical.
        assert doc_a != doc_b
