"""Soak test: every subsystem running together in one pod.

Four hosts, two serving NICs + one backup, a pooled SSD, a Raft-replicated
allocator, the load balancer, network traffic from two external clients and
block I/O from an instance -- then a NIC failure in the middle.  Asserts
global invariants at the end: no leaks, no lost state, traffic and I/O kept
flowing.
"""

import numpy as np
import pytest

from repro.core.allocator.balancer import LoadBalancer
from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.workloads.blockio import BlockWorkload
from repro.workloads.echo import EchoClient, EchoServer


@pytest.fixture(scope="module")
def soak_result():
    pod = CXLPod(mode="oasis")
    hosts = [pod.add_host() for _ in range(4)]
    nic0 = pod.add_nic(hosts[0])
    nic1 = pod.add_nic(hosts[1])
    backup = pod.add_nic(hosts[2], is_backup=True)
    ssd = pod.add_ssd(hosts[0])
    pod.enable_raft(replicas=3)
    pod.allocator.start_host_monitor()
    balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=200)
    balancer.start()

    # Two echo instances on NIC-less host 3, pinned to different NICs.
    ips = [make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2)]
    instances = [
        pod.add_instance(hosts[3], ip=ips[0], nic=nic0),
        pod.add_instance(hosts[3], ip=ips[1], nic=nic1),
    ]
    for inst in instances:
        EchoServer(pod.sim, inst)
    clients = []
    for i, ip in enumerate(ips):
        endpoint = pod.add_external_client(ip=make_ip(10, 0, 9, 1 + i))
        client = EchoClient(pod.sim, endpoint, ip, rate_pps=3000,
                            port=20_000 + i)
        client.start(1.5)
        clients.append(client)

    # Block I/O from instance 0 against the pooled SSD.
    device = pod.add_block_device(instances[0], ssd)
    workload = BlockWorkload(pod.sim, device, rate_iops=3000,
                             rng=np.random.default_rng(9))
    workload.start(1.5)

    pod.run(0.702)
    pod.fail_switch_port(nic0)       # mid-run NIC failure
    pod.run(1.2)
    pod.stop()
    balancer.stop()
    return pod, clients, workload, instances, nic0, backup


class TestSoak:
    def test_network_traffic_survived_the_failure(self, soak_result):
        pod, clients, workload, instances, nic0, backup = soak_result
        for client in clients:
            assert client.stats.received > client.stats.sent * 0.95
        # The nic0 client lost only the failover window's worth of packets.
        assert clients[0].stats.lost < 3000 * 0.1

    def test_failover_executed_and_committed(self, soak_result):
        pod, *_ = soak_result
        assert pod.allocator.failovers_executed == 1
        leader = pod.raft_nodes[0]
        commands = [leader.log.entry(i).command
                    for i in range(1, leader.commit_index + 1)]
        assert any(c.get("op") == "failover" for c in commands)

    def test_affected_instance_moved_to_backup(self, soak_result):
        pod, clients, workload, instances, nic0, backup = soak_result
        assert pod.allocator.assignments[instances[0].ip] == backup.name
        assert pod.allocator.assignments[instances[1].ip] != backup.name

    def test_block_io_unaffected(self, soak_result):
        pod, clients, workload, *_ = soak_result
        stats = workload.stats.summary()
        assert stats["errors"] == 0
        assert stats["completed"] > 3000
        assert workload.inflight == 0

    def test_no_buffer_leaks_anywhere(self, soak_result):
        pod, *_ = soak_result
        for frontend in pod.frontends.values():
            assert len(frontend._tx_pending) == 0
        for backend in pod.backends.values():
            outstanding = backend.rx_pool.outstanding
            assert outstanding == len(backend.nic.rx_ring)
        for frontend in pod.storage_frontends.values():
            assert frontend.inflight == 0
            assert frontend._space.allocated_bytes == 0

    def test_leases_consistent(self, soak_result):
        pod, clients, workload, instances, nic0, backup = soak_result
        for inst in instances:
            nic_name = pod.allocator.assignments[inst.ip]
            assert pod.allocator.leases.get(inst.ip, nic_name) is not None
        assert pod.allocator.leases.leases_on(nic0.name) == []

    def test_telemetry_kept_flowing(self, soak_result):
        pod, *_ = soak_result
        assert pod.allocator.telemetry_store.records_ingested > 30
