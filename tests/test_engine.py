"""Tests for the driver event-loop framework and ARP/endpoint pieces."""

import pytest

from repro.core.arp import ArpRegistry
from repro.core.engine import Driver
from repro.net.endpoint import ExternalEndpoint
from repro.net.packet import BROADCAST_MAC, Frame, make_ip, make_mac
from repro.net.switch import LearningSwitch
from repro.sim.core import USEC, Simulator


class CountingDriver(Driver):
    """Drains a list, charging 100 ns per item."""

    def __init__(self, sim):
        super().__init__(sim, "counting")
        self.queue = []
        self.processed = []
        self.passes = 0

    def _process(self):
        self.passes += 1
        if not self.queue:
            return 0, 10.0   # idle-pass cost, no items
        items = list(self.queue)
        self.queue.clear()
        self.processed.extend(items)
        return len(items), 100.0 * len(items)


class TestDriverLoop:
    def test_kick_wakes_and_processes(self, sim):
        driver = CountingDriver(sim)
        driver.start()
        driver.queue.append("a")
        driver.kick()
        sim.run(until=1e-3)
        assert driver.processed == ["a"]
        assert driver.wakeups == 1

    def test_kick_before_start_latches(self, sim):
        driver = CountingDriver(sim)
        driver.queue.append("early")
        driver.kick()
        driver.start()
        sim.run(until=1e-3)
        assert driver.processed == ["early"]

    def test_work_during_processing_drained_same_wake(self, sim):
        driver = CountingDriver(sim)
        driver.start()
        driver.queue.append("first")
        driver.kick()

        # Inject more work while the driver sleeps off its processing cost.
        sim.schedule(50e-9, driver.queue.append, "second")
        sim.run(until=1e-3)
        assert driver.processed == ["first", "second"]

    def test_busy_time_accounted(self, sim):
        driver = CountingDriver(sim)
        driver.start()
        driver.queue.extend(["a", "b", "c"])
        driver.kick()
        sim.run(until=1e-3)
        assert driver.busy_ns >= 300.0

    def test_idle_pass_does_not_spin(self, sim):
        """An idle pass (cost > 0, items == 0) must not loop forever."""
        driver = CountingDriver(sim)
        driver.start()
        driver.kick()
        sim.run(until=1e-3)
        assert driver.passes <= 2

    def test_stop_terminates_loop(self, sim):
        driver = CountingDriver(sim)
        driver.start()
        driver.stop()
        driver.queue.append("late")
        driver.kick()
        sim.run(until=1e-3)
        assert driver.processed == []

    def test_start_idempotent(self, sim):
        driver = CountingDriver(sim)
        driver.start()
        driver.start()
        driver.queue.append("x")
        driver.kick()
        sim.run(until=1e-3)
        assert driver.processed == ["x"]


class TestArpRegistry:
    def test_announce_and_lookup(self):
        arp = ArpRegistry()
        arp.announce(make_ip(10, 0, 0, 1), make_mac(1))
        assert arp.lookup(make_ip(10, 0, 0, 1)) == make_mac(1)

    def test_unknown_ip_resolves_to_broadcast(self):
        arp = ArpRegistry()
        assert arp.lookup(make_ip(1, 1, 1, 1)) == BROADCAST_MAC

    def test_garp_counted_and_updates(self):
        arp = ArpRegistry()
        ip = make_ip(10, 0, 0, 1)
        arp.announce(ip, make_mac(1))
        arp.announce(ip, make_mac(2), garp=True)
        assert arp.lookup(ip) == make_mac(2)
        assert arp.garp_count == 1

    def test_forget(self):
        arp = ArpRegistry()
        ip = make_ip(10, 0, 0, 1)
        arp.announce(ip, make_mac(1))
        arp.forget(ip)
        assert ip not in arp
        assert len(arp) == 0


class TestExternalEndpoint:
    def test_send_fills_addresses_and_reaches_switch(self, sim):
        switch = LearningSwitch(sim)
        port = switch.new_port()
        sink_port = switch.new_port()
        sink = []
        sink_port.attach(sink.append)
        arp = ArpRegistry()
        dst_ip = make_ip(10, 0, 0, 9)
        arp.announce(dst_ip, make_mac(9))
        endpoint = ExternalEndpoint(sim, "client", make_mac(200),
                                    make_ip(10, 0, 9, 1), port)
        endpoint.set_arp(arp)
        endpoint.send_frame(Frame(dst_mac=0, src_mac=0, dst_ip=dst_ip))
        sim.run_all()
        assert len(sink) == 1
        assert sink[0].src_mac == endpoint.mac
        assert sink[0].src_ip == endpoint.ip
        assert sink[0].dst_mac == make_mac(9)

    def test_stack_latency_applied(self, sim):
        switch = LearningSwitch(sim)
        port = switch.new_port()
        endpoint = ExternalEndpoint(sim, "client", make_mac(200),
                                    make_ip(10, 0, 9, 1), port,
                                    stack_latency_us=3.0)
        got = []
        endpoint.add_handler(lambda f: got.append(sim.now))
        endpoint._on_wire_rx(Frame(dst_mac=endpoint.mac, src_mac=make_mac(9)))
        sim.run_all()
        assert got[0] == pytest.approx(3 * USEC)
