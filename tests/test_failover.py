"""Integration tests for NIC failover and graceful migration (§3.3.3-§3.3.4)."""

import numpy as np
import pytest

from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def build_failover_pod():
    pod = CXLPod(mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    nic0 = pod.add_nic(h0)
    nic1 = pod.add_nic(h1, is_backup=True)
    inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
    client = pod.add_external_client(ip=CLIENT_IP)
    return pod, inst, client, nic0, nic1


class TestFailover:
    def test_instance_registered_with_backup_at_launch(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        backend1 = pod.backends[nic1.name]
        assert SERVER_IP in backend1.registered_ips   # §3.3.3: at launch

    def test_switch_port_failure_detected_and_failed_over(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        pod.fail_switch_port(nic0)
        pod.run(0.2)
        assert pod.allocator.failovers_executed == 1
        assert pod.allocator.devices[nic0.name].failed
        record = pod.frontends["h1"].record_of(SERVER_IP)
        assert record.primary.name == nic1.name

    def test_nic_hardware_failure_also_detected(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        pod.fail_nic(nic0)
        pod.run(0.2)
        assert pod.allocator.failovers_executed == 1

    def test_mac_borrowed_by_backup(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        # Traffic taught the switch nic0's port.
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(0.05)
        pod.run(0.06)
        old_port = pod.switch.port_of_mac(nic0.mac)
        pod.fail_switch_port(nic0)
        pod.run(0.2)
        assert pod.switch.port_of_mac(nic0.mac) != old_port

    def test_traffic_resumes_after_failover(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(1.0)
        pod.run(0.5)
        received_before = ec.stats.received
        pod.fail_switch_port(nic0)
        pod.run(0.7)
        assert ec.stats.received > received_before + 1000

    def test_interruption_lands_near_38ms(self):
        """Figure 13: detection + allocator + notify + MAC borrow ~38 ms."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=4000)
        ec.start(1.2)
        # Inject just after a 25 ms monitor tick for worst-case detection.
        pod.run(0.502)
        pod.fail_switch_port(nic0)
        pod.run(0.9)
        gaps = np.diff(np.asarray(ec.stats.recv_times))
        interruption_ms = gaps.max() * 1000
        assert 20.0 <= interruption_ms <= 60.0

    def test_leases_moved_to_backup(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        assert pod.allocator.leases.get(SERVER_IP, nic0.name) is not None
        pod.fail_switch_port(nic0)
        pod.run(0.2)
        assert pod.allocator.leases.get(SERVER_IP, nic1.name) is not None
        assert pod.allocator.assignments[SERVER_IP] == nic1.name

    def test_failure_reported_only_once(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        pod.fail_switch_port(nic0)
        pod.run(0.5)   # many monitor ticks while down
        assert pod.allocator.failovers_executed == 1

    def test_host_failure_inferred_from_missing_telemetry(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.allocator.start_host_monitor()
        pod.run(0.3)
        # Silence h0's backend entirely (host crash).
        backend0 = pod.backends[nic0.name]
        backend0.stop_monitors()
        backend0.stop()
        pod.run(0.6)
        assert pod.allocator.failovers_executed == 1
        assert pod.allocator.devices[nic0.name].failed


class TestMigration:
    def test_graceful_migration_updates_mac_and_garp(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        pod.run(0.01)
        garps_before = pod.arp.garp_count
        pod.allocator.migrate(SERVER_IP, nic1.name)
        pod.run(0.01)
        record = pod.frontends["h1"].record_of(SERVER_IP)
        assert record.primary.name == nic1.name
        assert record.current_mac == nic1.mac
        assert pod.arp.garp_count == garps_before + 1
        assert pod.arp.lookup(SERVER_IP) == nic1.mac

    def test_grace_period_keeps_old_registration(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        pod.run(0.01)
        pod.allocator.migrate(SERVER_IP, nic1.name)
        pod.run(1.0)   # still inside the 5 s grace period
        assert SERVER_IP in pod.backends[nic0.name].registered_ips
        pod.run(5.0)   # grace period over
        assert SERVER_IP not in pod.backends[nic0.name].registered_ips

    def test_traffic_flows_after_migration(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        client = pod.add_external_client(ip=CLIENT_IP)
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(0.2)
        pod.run(0.05)
        pod.allocator.migrate(SERVER_IP, nic1.name)
        pod.run(0.25)
        assert ec.stats.lost <= ec.stats.sent * 0.01   # ~no loss (§3.3.4)
        assert nic1.tx_frames > 0

    def test_rebalance_moves_instance_off_hottest_nic(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        pod.run(0.01)
        pod.allocator.devices[nic0.name].measured_load = 10e9
        pod.allocator.devices[nic1.name].measured_load = 1e9
        moved = pod.allocator.rebalance_once()
        pod.run(0.01)
        assert moved is not None
        assert pod.allocator.assignments[SERVER_IP] == nic1.name


class TestControlPlaneRaces:
    def test_primary_and_backup_fail_same_window_parks_then_reacquires(self):
        """Both the primary and its backup die within one detection window:
        the failover re-validates the backup at apply time, finds it dead,
        parks the instance (``failover.no_backup``) and re-acquires as soon
        as a fresh backend registers."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        nic0.fail()
        nic1.fail()
        pod.run(0.3)
        allocator = pod.allocator
        assert allocator.failover_no_backup >= 1
        assert SERVER_IP in allocator.parked
        assert allocator.assignments.get(SERVER_IP) is None
        # Capacity returns: a new NIC registers and the parked instance
        # re-acquires onto it with a fresh lease and epoch.
        h2 = pod.add_host()
        nic2 = pod.add_nic(h2)
        pod.run(0.2)
        assert allocator.parked == {}
        assert allocator.assignments[SERVER_IP] == nic2.name
        lease = allocator.leases.get(SERVER_IP, nic2.name)
        assert lease is not None and lease.valid(pod.sim.now)
        assert pod.frontends["h1"].record_of(SERVER_IP).primary.name == nic2.name

    def test_duplicate_reports_race_scheduled_commit(self):
        """Repeated failure reports landing before (and after) the scheduled
        ``_commit_failover`` are absorbed by the in-flight latch: one
        failover, every extra report counted."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.run(0.1)
        allocator = pod.allocator
        allocator.on_failure_report(nic0.name)
        allocator.on_failure_report(nic0.name)   # before the 10 ms commit
        pod.run(0.005)                           # still inside the window
        allocator.on_failure_report(nic0.name)
        pod.run(0.3)
        allocator.on_failure_report(nic0.name)   # after the failover applied
        assert allocator.failovers_executed == 1
        assert allocator.failover_log[nic0.name] == 1
        assert allocator.duplicate_reports == 3
        assert allocator.assignments[SERVER_IP] == nic1.name

    def test_failovers_match_failed_devices(self):
        """Each failed device produces exactly one failover entry even when
        two devices fail back to back."""
        pod = CXLPod(mode="oasis")
        hosts = [pod.add_host() for _ in range(3)]
        nic0 = pod.add_nic(hosts[0])
        nic1 = pod.add_nic(hosts[1])
        pod.add_nic(hosts[2], is_backup=True)
        pod.add_instance(hosts[2], ip=SERVER_IP, nic=nic0)
        pod.run(0.1)
        nic0.fail()
        nic1.fail()
        pod.run(0.4)
        log = pod.allocator.failover_log
        assert log.get(nic0.name) == 1
        assert log.get(nic1.name) == 1
        assert pod.allocator.failovers_executed == 2


class TestFailoverRaces:
    def test_migration_onto_undetected_failed_nic_recovers(self):
        """Regression (found by the chaos suite): an instance migrated onto a
        NIC that has already failed -- but whose failure is not yet detected
        -- must be rerouted to the allocator's replacement, never back to its
        stale per-instance backup (which may be the failed NIC itself)."""
        pod = CXLPod(mode="oasis")
        hosts = [pod.add_host() for _ in range(4)]
        nic0 = pod.add_nic(hosts[0])
        nic1 = pod.add_nic(hosts[1])
        nic2 = pod.add_nic(hosts[2])
        backup = pod.add_nic(hosts[3], is_backup=True)
        inst = pod.add_instance(hosts[3], ip=SERVER_IP)   # lands on backup
        nic0.fail()                                       # not yet detected
        pod.allocator.migrate(SERVER_IP, nic0.name)       # race: onto dead NIC
        pod.run(0.3)                                      # detection + failover
        record = pod.frontends[hosts[3].name].record_of(SERVER_IP)
        assigned = pod.allocator.assignments[SERVER_IP]
        assert assigned == record.primary.name            # views agree
        assert not pod.allocator.devices[assigned].failed
        lease = pod.allocator.leases.get(SERVER_IP, assigned)
        assert lease is not None and not lease.revoked
