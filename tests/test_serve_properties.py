"""Property tests for the multi-tenant WFQ scheduler (PR 10).

Hypothesis drives random tenant mixes and arrival interleavings against
:class:`~repro.overload.WeightedFairScheduler`, checking the contracts the
serving layer relies on:

* **work conservation** -- ``pop`` returns an item whenever any lane holds
  one (a ``None`` pop implies the scheduler is empty);
* **weighted-share bounds** -- with every tenant continuously backlogged,
  served counts track the weight proportions within a bounded error;
* **per-tenant conservation** -- for every tenant,
  ``pushed == admitted + shed_full`` and
  ``admitted == served + shed_sojourn + queued``;
* **determinism** -- the same operation sequence replays to the identical
  serve/shed sequence (no hidden ordering or RNG).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overload import TenantSpec, TokenBucket, WeightedFairScheduler

TENANTS = ("a", "b", "c")

WfqOp = st.one_of(
    st.tuples(st.just("push"), st.sampled_from(TENANTS)),
    st.tuples(st.just("pop"), st.just("")),
    st.tuples(st.just("advance"), st.integers(1, 10)),    # x1 ms
)

Weights = st.tuples(st.floats(0.5, 16.0), st.floats(0.5, 16.0),
                    st.floats(0.5, 16.0))


def build(weights, depth=64, guarantee=0.0):
    return WeightedFairScheduler(
        depth=depth, target_s=0.005, interval_s=0.025,
        tenants={name: TenantSpec(weight=w, guarantee_rate=guarantee)
                 for name, w in zip(TENANTS, weights)})


class TestWfqProperties:
    @given(st.lists(WfqOp, max_size=400), Weights, st.integers(1, 32))
    @settings(max_examples=200, deadline=None)
    def test_work_conservation_and_per_tenant_books(self, ops, weights,
                                                    depth):
        wfq = build(weights, depth=depth)
        now = 0.0
        next_item = 0
        served = {name: 0 for name in TENANTS}
        shed = {name: 0 for name in TENANTS}
        origin = {}
        for op, arg in ops:
            if op == "advance":
                now += arg * 1e-3
            elif op == "push":
                origin[next_item] = arg
                wfq.push(now, next_item, arg)
                next_item += 1
            else:
                before = len(wfq)
                item, dropped = wfq.pop(now)
                for drop in dropped:
                    shed[origin[drop]] += 1
                if item is None:
                    # Work conservation: an empty-handed pop means every
                    # lane is empty (drops may have drained the rest).
                    assert len(wfq) == 0
                else:
                    served[origin[item]] += 1
                    assert len(wfq) == before - 1 - len(dropped)
        per_tenant = wfq.per_tenant()
        for name in TENANTS:
            stats = per_tenant.get(name)
            if stats is None:
                continue
            assert stats["pushed"] == stats["admitted"] + stats["shed_full"]
            assert stats["admitted"] == (stats["served"]
                                         + stats["shed_sojourn"]
                                         + stats["queued"])
            assert stats["served"] == served[name]
            assert stats["shed_sojourn"] == shed[name]
        # Aggregate counters agree with the per-tenant sums.
        assert wfq.admitted == sum(
            s["served"] + s["shed_sojourn"] + s["queued"]
            for s in per_tenant.values())

    @given(Weights, st.integers(50, 400))
    @settings(max_examples=100, deadline=None)
    def test_backlogged_tenants_split_service_by_weight(self, weights,
                                                        rounds):
        """All-backlogged lanes must serve within ~one quantum of the
        weighted proportion (SFQ's bounded unfairness)."""
        wfq = build(weights, depth=1024)
        # Backlog every lane deeply enough that no lane empties mid-test,
        # then serve ``rounds`` requests back-to-back (now stays at the
        # push instant, so CoDel never engages).
        for i in range(1024):
            for name in TENANTS:
                wfq.push(0.0, (name, i), name)
        served = {name: 0 for name in TENANTS}
        for _ in range(rounds):
            item, dropped = wfq.pop(0.0)
            assert dropped == []
            assert item is not None
            served[item[0]] += 1
        total_weight = sum(weights)
        for name, weight in zip(TENANTS, weights):
            expected = rounds * weight / total_weight
            # SFQ with unit cost: per-tenant service lag is bounded by one
            # request per competing tenant plus the proportional share.
            slack = len(TENANTS) + 0.1 * expected
            assert abs(served[name] - expected) <= slack, (
                f"{name}: served {served[name]} vs expected {expected:.1f} "
                f"(weights {weights})")

    @given(st.lists(WfqOp, max_size=300), Weights)
    @settings(max_examples=100, deadline=None)
    def test_same_sequence_replays_identically(self, ops, weights):
        def run():
            wfq = build(weights, depth=16)
            now = 0.0
            next_item = 0
            trace = []
            for op, arg in ops:
                if op == "advance":
                    now += arg * 1e-3
                elif op == "push":
                    trace.append(("push", wfq.push(now, next_item, arg)))
                    next_item += 1
                else:
                    item, dropped = wfq.pop(now)
                    trace.append(("pop", item, tuple(dropped)))
            return trace

        assert run() == run()

    @given(st.floats(10.0, 1000.0), st.floats(1.0, 64.0),
           st.lists(st.floats(0.0001, 0.1), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_token_bucket_never_exceeds_rate(self, rate, burst, gaps):
        """Grants are bounded by the initial burst plus rate x elapsed."""
        bucket = TokenBucket(rate, burst)
        now = 0.0
        for gap in gaps:
            now += gap
            bucket.take(now)
            assert -1e-9 <= bucket.tokens <= burst + 1e-9
        assert bucket.granted <= burst + rate * now + 1e-6

    def test_guaranteed_lane_preempts_weighted_lanes(self):
        """A covered request is served before any backlogged WFQ lane."""
        wfq = WeightedFairScheduler(
            depth=64,
            tenants={"gold": TenantSpec(weight=1.0, guarantee_rate=1000.0,
                                        guarantee_burst=4.0),
                     "bulk": TenantSpec(weight=100.0)})
        for i in range(10):
            wfq.push(0.0, ("bulk", i), "bulk")
        wfq.push(0.0, ("gold", 0), "gold")     # covered by the bucket
        item, dropped = wfq.pop(0.0)
        assert dropped == []
        assert item == ("gold", 0)

    def test_unknown_tenant_gets_a_default_lane(self):
        wfq = WeightedFairScheduler(depth=8)
        assert wfq.push(0.0, "x", None)
        assert wfq.push(0.0, "y", "stranger")
        assert len(wfq) == 2
        served = {wfq.pop(0.0)[0], wfq.pop(0.0)[0]}
        assert served == {"x", "y"}
