"""Property tests: the tiered event queue is one totally-ordered queue.

The scheduler splits events across a now-queue and two heaps (near/far) by
delay, and four scheduling APIs (``schedule``, ``at``, ``call_after``,
``call_at``) feed it.  Hypothesis drives random mixes of API, delay and
nesting and asserts the one ordering contract every driver and channel in
the reproduction depends on:

* events fire in global ``(time, issue-order)`` order -- in particular,
  **same-timestamp events fire in exactly the order they were issued**,
  regardless of which API or which internal tier each one landed in;
* events issued *while firing* at time T slot in after everything already
  queued for T (they drew a later sequence number), still before anything
  later.

``CHAOS_MAX_EXAMPLES`` scales the search effort (raised in the nightly
chaos CI job).
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator

MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "50"))

FIFO_SETTINGS = settings(max_examples=MAX_EXAMPLES, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

# Delays straddling every tier boundary: the zero-delay now queue, the
# sub-4 us near heap, and the far heap -- with heavy collision mass so most
# runs contain many same-timestamp groups.
DELAYS = st.sampled_from([0.0, 0.0, 0.0, 1e-9, 1e-9, 5e-7, 1e-6, 1e-6,
                          3.9e-6, 4e-6, 1e-5, 1e-3])

APIS = st.sampled_from(["schedule", "at", "call_after", "call_at"])


def _issue(sim: Simulator, api: str, delay: float, fn) -> None:
    if api == "schedule":
        sim.schedule(delay, fn)
    elif api == "at":
        sim.at(sim.now + delay, fn)
    elif api == "call_after":
        sim.call_after(delay, fn)
    else:
        sim.call_at(sim.now + delay, fn)


class TestSameTimestampFifo:
    @given(st.lists(st.tuples(APIS, DELAYS), min_size=2, max_size=80))
    @FIFO_SETTINGS
    def test_equal_times_fire_in_issue_order(self, ops):
        sim = Simulator()
        fired = []
        issued = []
        for index, (api, delay) in enumerate(ops):
            _issue(sim, api, delay, lambda i=index: fired.append(i))
            issued.append((delay, index))
        sim.run_all()
        # Global contract: sort by time, stable in issue order.
        expected = [i for _, i in sorted(issued, key=lambda pair: pair[0])]
        assert fired == expected

    @given(st.lists(st.tuples(APIS, DELAYS), min_size=1, max_size=40),
           APIS, APIS)
    @FIFO_SETTINGS
    def test_nested_zero_delay_fires_after_queued_peers(self, ops, api_outer,
                                                       api_nested):
        """A zero-delay event issued at T fires after peers already queued
        for T (it drew a later seq), before anything strictly later."""
        sim = Simulator()
        fired = []
        # The probe fires at T = 1 us and issues a nested zero-delay event.
        probe_t = 1e-6

        def nested():
            fired.append("nested")

        def probe():
            fired.append("probe")
            _issue(sim, api_nested, 0.0, nested)

        _issue(sim, api_outer, probe_t, probe)
        for index, (api, delay) in enumerate(ops):
            _issue(sim, api, delay, lambda i=index: fired.append(i))
        sim.run_all()
        probe_at = fired.index("probe")
        nested_at = fired.index("nested")
        assert nested_at > probe_at
        # Everything strictly later than T fires after the nested event;
        # peers at exactly T that were issued before run_all keep their
        # earlier sequence numbers and fire before it.
        for index, (_, delay) in enumerate(ops):
            if delay > probe_t:
                assert fired.index(index) > nested_at
            elif delay == probe_t:
                assert fired.index(index) < nested_at

    @given(st.lists(st.tuples(APIS, DELAYS), min_size=2, max_size=60),
           st.integers(0, 1 << 30))
    @FIFO_SETTINGS
    def test_order_is_seed_stable(self, ops, salt):
        """Two identical schedules replay identically (no hidden state --
        e.g. the Event free list -- may leak into ordering)."""
        del salt  # ordering must not depend on anything but the ops
        runs = []
        for _ in range(2):
            sim = Simulator()
            fired = []
            for index, (api, delay) in enumerate(ops):
                _issue(sim, api, delay, lambda i=index: fired.append(i))
            # Interleave a partial run to exercise pool recycling between
            # batches: recycled Events must not perturb later ordering.
            sim.run(max_events=len(ops) // 2)
            sim.run_all()
            runs.append(fired)
        assert runs[0] == runs[1]

    @given(st.lists(st.tuples(APIS, DELAYS), min_size=1, max_size=60))
    @FIFO_SETTINGS
    def test_live_count_drains_to_zero(self, ops):
        sim = Simulator()
        for api, delay in ops:
            _issue(sim, api, delay, lambda: None)
        assert sim.pending == len(ops)
        sim.run_all()
        assert sim.pending == 0
        assert sim.processed_events == len(ops)
