"""Tests for the learning switch -- including the MAC-borrowing mechanics
that Oasis failover depends on (§3.3.3)."""

import pytest

from repro.net.packet import BROADCAST_MAC, Frame, make_mac
from repro.net.switch import LearningSwitch
from repro.sim.core import Simulator, USEC

A, B, C = make_mac(1), make_mac(2), make_mac(3)


def build(sim, n_ports=3):
    switch = LearningSwitch(sim)
    inboxes = []
    ports = []
    for _ in range(n_ports):
        port = switch.new_port()
        inbox = []
        port.attach(inbox.append)
        ports.append(port)
        inboxes.append(inbox)
    return switch, ports, inboxes


class TestLearning:
    def test_unknown_destination_floods(self, sim):
        switch, ports, inboxes = build(sim)
        ports[0].receive(Frame(dst_mac=B, src_mac=A))
        sim.run_all()
        assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1
        assert len(inboxes[0]) == 0  # never back out the ingress port

    def test_learned_destination_unicast(self, sim):
        switch, ports, inboxes = build(sim)
        ports[1].receive(Frame(dst_mac=A, src_mac=B))   # learn B @ port 1
        sim.run_all()
        ports[0].receive(Frame(dst_mac=B, src_mac=A))
        sim.run_all()
        assert len(inboxes[1]) == 1   # the unicast (floods skip the ingress)
        assert len(inboxes[2]) == 1   # only the initial flood

    def test_broadcast_always_floods(self, sim):
        switch, ports, inboxes = build(sim)
        ports[0].receive(Frame(dst_mac=BROADCAST_MAC, src_mac=A))
        sim.run_all()
        assert len(inboxes[1]) == len(inboxes[2]) == 1

    def test_mac_moves_to_new_port(self, sim):
        """MAC borrowing: a frame with the borrowed source MAC relearns the
        mapping, rerouting subsequent traffic (§3.3.3)."""
        switch, ports, inboxes = build(sim)
        ports[0].receive(Frame(dst_mac=C, src_mac=A))
        sim.run_all()
        assert switch.port_of_mac(A) == 0
        ports[1].receive(Frame(dst_mac=C, src_mac=A))   # port 1 borrows A
        sim.run_all()
        assert switch.port_of_mac(A) == 1
        ports[2].receive(Frame(dst_mac=A, src_mac=C))
        sim.run_all()
        assert len(inboxes[1]) > 0

    def test_same_port_destination_not_echoed(self, sim):
        switch, ports, inboxes = build(sim)
        ports[0].receive(Frame(dst_mac=A, src_mac=B))   # learn B @ 0
        sim.run_all()
        ports[0].receive(Frame(dst_mac=B, src_mac=A))   # B is on same port
        sim.run_all()
        assert len(inboxes[0]) == 0


class TestPortAdmin:
    def test_disabled_port_drops_egress(self, sim):
        switch, ports, inboxes = build(sim)
        ports[1].receive(Frame(dst_mac=A, src_mac=B))   # learn B @ 1
        sim.run_all()
        ports[1].set_enabled(False)
        ports[0].receive(Frame(dst_mac=B, src_mac=A))
        sim.run_all()
        assert inboxes[1] == [] or len(inboxes[1]) == 1  # only the learn flood
        assert ports[1].dropped_frames >= 1

    def test_disabled_port_drops_ingress(self, sim):
        switch, ports, inboxes = build(sim)
        ports[0].set_enabled(False)
        ports[0].receive(Frame(dst_mac=B, src_mac=A))
        sim.run_all()
        assert all(not inbox for inbox in inboxes)

    def test_link_change_notifies_listeners(self, sim):
        switch, ports, _ = build(sim)
        events = []
        ports[0].on_link_change(events.append)
        ports[0].set_enabled(False)
        ports[0].set_enabled(False)   # idempotent: no duplicate event
        ports[0].set_enabled(True)
        assert events == [False, True]

    def test_frame_inflight_when_port_goes_down_is_dropped(self, sim):
        switch, ports, inboxes = build(sim)
        ports[1].receive(Frame(dst_mac=A, src_mac=B))
        sim.run_all()
        ports[0].receive(Frame(dst_mac=B, src_mac=A))
        ports[1].set_enabled(False)   # before delivery event fires
        sim.run_all()
        assert len(inboxes[1]) == 0   # in-flight frame dropped at the port


class TestTiming:
    def test_serialization_delay_scales_with_size(self, sim):
        switch, ports, inboxes = build(sim, n_ports=2)
        ports[1].receive(Frame(dst_mac=A, src_mac=B))
        sim.run_all()
        t0 = sim.now
        arrivals = []
        ports[1]._deliver = lambda f: arrivals.append(sim.now)
        ports[0].receive(Frame(dst_mac=B, src_mac=A, payload=b"x" * 1400,
                               wire_size=1500))
        sim.run_all()
        big = arrivals[0] - t0
        # 1500 B at 100 Gbit/s = 120 ns + 0.5 us port latency
        assert big == pytest.approx(0.5 * USEC + 1500 / 12.5e9, rel=0.01)

    def test_queueing_backlog_accumulates(self, sim):
        switch, ports, _ = build(sim, n_ports=2)
        ports[1].receive(Frame(dst_mac=A, src_mac=B))
        sim.run_all()
        for _ in range(10):
            ports[0].receive(Frame(dst_mac=B, src_mac=A, wire_size=1500))
        assert ports[1].queue_delay_s > 0
        sim.run_all()

    def test_port_counters(self, sim):
        switch, ports, _ = build(sim, n_ports=2)
        ports[0].receive(Frame(dst_mac=BROADCAST_MAC, src_mac=A, wire_size=100))
        sim.run_all()
        assert ports[1].tx_frames == 1
        assert ports[1].tx_bytes == 100
