"""End-to-end overload-control tests (PR 9).

Covers the acceptance criteria of the overload-robustness PR:

* the ``python -m repro overload`` sweep: budgets-on recovers to >= 90% of
  pre-surge goodput after a 1.5x-capacity surge while the budgets-off
  ablation stays collapsed (< 50%), and the whole result is byte-identical
  under a fixed seed;
* overload control is off by default: an unarmed pod pays no sheds, no
  budget denials, no breaker trips;
* the circuit breaker trips on a sick device, sheds while open, and
  re-closes after a healthy half-open probe -- with nothing lost from the
  ``submitted == ok + error + shed + pending`` conservation identity;
* retry/backoff jitter draws from a dedicated RNG substream: injecting a
  retry into the fig10 echo path leaves the workload's arrival stream
  byte-identical (satellite of the fig10 replay contract);
* the netengine browns out low-priority frames only;
* the ``overload.surge`` chaos fault fires from the default plan, recovers,
  and replays deterministically.
"""

import json
from dataclasses import replace

import pytest

from repro.config import OasisConfig
from repro.core.pod import CXLPod
from repro.experiments.common import SERVER_IP, build_echo_pod
from repro.experiments.overload import run_overload
from repro.faults import FaultPlan
from repro.net.packet import Frame, make_ip
from repro.workloads.echo import EchoClient
from repro.workloads.openloop import OpenLoopBlockClient, OpenLoopStats

SWEEP_KW = dict(seed=11, pre_s=0.2, surge_s=0.15, post_s=0.3)


@pytest.fixture(scope="module")
def sweep():
    return run_overload(**SWEEP_KW)


def build_storage_pod(seed=7, bandwidth_gbps=None):
    base = OasisConfig()
    ssd_cfg = (base.ssd if bandwidth_gbps is None
               else replace(base.ssd, bandwidth_gbps=bandwidth_gbps))
    pod = CXLPod(config=base.with_(seed=seed, ssd=ssd_cfg), mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=make_ip(10, 0, 0, 1))
    device = pod.add_block_device(inst, ssd)
    return pod, h1, ssd, device


def conservation_holds(frontend) -> bool:
    return frontend.submitted == (frontend.completed_ok
                                  + frontend.completed_error
                                  + frontend.shed + len(frontend._pending))


class TestOverloadSweep:
    def test_budgets_on_recovers(self, sweep):
        assert sweep["recovery_on"] >= 0.90

    def test_budgets_off_stays_collapsed(self, sweep):
        assert sweep["recovery_off"] < 0.50
        assert sweep["ok"]

    def test_off_run_is_a_retry_storm(self, sweep):
        off = sweep["off"]["frontend"]
        assert off["shed"] == 0            # nothing protects the device
        assert off["retries"] > 100        # timeouts amplify into retries
        assert off["giveups"] > 0

    def test_on_run_shows_the_control_actions(self, sweep):
        on = sweep["on"]
        frontend = on["frontend"]
        assert frontend["shed"] > 0
        assert frontend["shed_sojourn"] > 0      # CoDel front-drop engaged
        assert frontend["shed_brownout"] > 0     # background work shed
        assert on["brownout"]["entries"] >= 1
        assert on["brownout"]["exits"] >= 1      # ...and it recovered
        fired = {entry[1] for entry in on["alerts"]["log"]}
        assert "overload_shedding" in fired
        assert "overload_brownout" in fired

    def test_same_seed_is_byte_identical(self, sweep):
        again = run_overload(**SWEEP_KW)
        assert (json.dumps(sweep, sort_keys=True)
                == json.dumps(again, sort_keys=True))


class TestDisabledByDefault:
    def test_unarmed_pod_pays_nothing(self):
        pod, h1, _ssd, device = build_storage_pod()
        client = OpenLoopBlockClient(pod.sim, device, rate_iops=3000.0,
                                     rng=pod.rng.get("t/openloop"))
        client.start(0.05)
        pod.run(0.1)
        pod.stop()
        frontend = pod.storage_frontends[h1.name]
        assert frontend._overload is None
        assert frontend.submitted > 0
        assert frontend.shed == 0
        assert frontend.retry_budget_denied == 0
        assert frontend.breaker_trips == 0
        assert client.stats.shed == 0
        assert conservation_holds(frontend)


class TestOpenLoopStatsBinning:
    """Regressions: completions past the run window must not fold into the
    last bin, and windowed goodput must divide by the clamped span."""

    def test_late_completions_do_not_inflate_the_last_bin(self):
        stats = OpenLoopStats(bin_s=0.01, duration_s=0.1)
        stats.on_complete(0.095, 0, 50.0)     # inside the last bin
        stats.on_complete(0.25, 0, 5000.0)    # long after the run window
        assert stats.completed_ok == 2        # totals still count it...
        assert stats.goodput[-1] == 1         # ...the tail bin does not
        assert stats.late_goodput == 1
        # Pre-fix the 5 ms straggler also polluted the bin's mean latency.
        assert stats.mean_latency_us(len(stats.goodput) - 1) == 50.0

    def test_late_shed_and_errors_tracked_separately(self):
        from repro.core.storage.frontend import STATUS_SHED, STATUS_TIMEOUT
        stats = OpenLoopStats(bin_s=0.01, duration_s=0.1)
        stats.on_complete(0.15, STATUS_SHED, 1.0)
        stats.on_complete(0.15, STATUS_TIMEOUT, 1.0)
        assert stats.shed == 1 and stats.errors == 1
        assert sum(stats.shed_bins) == 0 and sum(stats.error_bins) == 0
        assert stats.late_shed == 1 and stats.late_errors == 1

    def test_window_span_is_clamped_at_the_array_edge(self):
        stats = OpenLoopStats(bin_s=0.01, duration_s=0.1)
        stats.on_complete(0.095, 0, 10.0)     # one completion, in bin 9
        # A window reaching past the last bin edge: pre-fix this summed
        # bins [5, 9) -- missing the completion -- yet divided by the
        # unclamped span, reporting 0 IOPS instead of 20.
        assert stats.window_goodput_iops(0.05, 0.2) == pytest.approx(20.0)
        # The experiments' final window [t, duration) includes the last bin.
        assert stats.window_goodput_iops(0.05, 0.1) == pytest.approx(20.0)


class TestOpenLoopRestartReset:
    def test_start_resets_surge_multiplier_and_inflight(self):
        """Regression: a client restarted after an ``overload.surge`` fault
        kept the surged rate (and stale in-flight count) from the prior run."""
        pod, _h1, _ssd, device = build_storage_pod()
        client = OpenLoopBlockClient(pod.sim, device, rate_iops=2000.0,
                                     rng=pod.rng.get("t/openloop"))
        client.start(0.05)
        client.set_rate_multiplier(8.0)       # the overload.surge fault hook
        pod.run(0.02)                         # stop mid-run: work in flight
        assert client.effective_rate == pytest.approx(16000.0)
        client._stop()
        client.start(0.05)                    # restart after the fault
        assert client.rate_mult == 1.0
        assert client.effective_rate == pytest.approx(2000.0)
        assert client.inflight == 0
        pod.run(0.2)
        pod.stop()
        assert client.stats.completed_ok > 0


class TestBreakerOnSickDevice:
    def test_media_error_burst_trips_sheds_and_recloses(self):
        pod, h1, ssd, device = build_storage_pod()
        pod.enable_overload_control()
        client = OpenLoopBlockClient(pod.sim, device, rate_iops=5000.0,
                                     rng=pod.rng.get("t/openloop"))
        # 12 armed errors: enough consecutive failures to trip (threshold
        # 8), few enough that the stragglers drain while the breaker is
        # open, so the first half-open probe finds a healthy device.
        pod.sim.at(0.02, ssd.inject_media_error, 12)
        client.start(0.15)
        pod.run(0.3)
        pod.stop()
        frontend = pod.storage_frontends[h1.name]
        assert frontend.breaker_trips >= 1
        assert frontend.shed_breaker >= 1        # rejected while open
        # The device healed once the armed errors ran out, so the half-open
        # probe succeeded and traffic flowed again.
        assert all(b.state == "closed" for b in frontend._breakers.values())
        assert sum(b.reclosures for b in frontend._breakers.values()) >= 1
        assert client.stats.completed_ok > 0
        assert conservation_holds(frontend)


class TestRetryJitterIsolation:
    """Satellite: retry jitter draws from a dedicated substream, so an
    injected retry cannot perturb the workload's own RNG stream."""

    def _fig10_run(self, inject_retry: bool):
        config = OasisConfig().with_(seed=5)
        pod, _inst, client_ep, nic0 = build_echo_pod("oasis", remote=True,
                                                     config=config)
        pod.enable_overload_control(replace(
            OasisConfig().overload, enabled=True, retry_jitter_frac=0.5))
        if inject_retry:
            pod.sim.at(0.01, nic0.inject_dma_abort, 2)
        client = EchoClient(pod.sim, client_ep, SERVER_IP, packet_size=75,
                            rate_pps=20_000.0,
                            rng=pod.rng.get("echo-client"), poisson=True)
        client.start(0.04)
        pod.run(0.06)
        pod.stop()
        backend = next(iter(pod.backends.values()))
        return client.stats.send_times, backend.tx_retries

    def test_fig10_stream_unchanged_by_injected_retry(self):
        clean_times, clean_retries = self._fig10_run(False)
        faulty_times, faulty_retries = self._fig10_run(True)
        assert clean_retries == 0
        assert faulty_retries >= 1          # the fault really caused retries
        assert faulty_times == clean_times  # ...yet arrivals are untouched


class TestNetengineBrownout:
    def test_only_low_priority_frames_are_shed(self):
        config = OasisConfig().with_(seed=9)
        pod, inst, _client_ep, _nic0 = build_echo_pod("oasis", remote=True,
                                                      config=config)
        pod.enable_overload_control()
        frontend = next(f for f in pod.frontends.values()
                        if inst.ip in f._records)
        frontend.set_brownout(1)

        def send(prio):
            frame = Frame(dst_mac=0, src_mac=0, src_ip=inst.ip,
                          dst_ip=make_ip(10, 0, 9, 1), src_port=1,
                          dst_port=2, payload=b"x" * 32,
                          meta={"prio": prio})
            frontend._instance_tx(inst, frame)

        send(0)                             # background: shed at the vNIC
        assert frontend.tx_shed_brownout == 1
        send(1)                             # foreground: goes through
        assert frontend.tx_shed_brownout == 1
        frontend.set_brownout(0)
        send(0)                             # healthy again: nothing shed
        assert frontend.tx_shed_brownout == 1
        assert frontend.tx_shed == 1


class TestSurgeChaosFault:
    def test_default_plan_surge_fires_and_replays(self):
        from repro.faults.chaos import DEFAULT_PLAN, run_chaos

        def once():
            plan = FaultPlan.from_json(json.dumps(DEFAULT_PLAN))
            return run_chaos(seed=3, plan=plan, duration_s=0.5,
                             verbose=False)

        first, second = once(), once()
        assert first["ok"], first["verdict"].render()
        events = json.dumps(first["events"])
        assert "overload.surge" in events
        assert first["events"] == second["events"]
        assert first["recovery"] == second["recovery"]
