"""Tests for the application service models (Figures 8/9/14 workloads)."""

import numpy as np
import pytest

from repro.net.packet import Frame, make_ip
from repro.sim.core import USEC, Simulator
from repro.workloads.apps import APP_PROFILES, AppClient, AppProfile, AppServer


class LoopbackEndpoint:
    """Zero-latency loopback wire for exercising the app layer alone."""

    def __init__(self, sim, ip):
        self.sim = sim
        self.ip = ip
        self.peer = None
        self.handlers = []

    def connect(self, peer):
        self.peer = peer
        peer.peer = self

    def send_frame(self, frame):
        if frame.src_ip == 0:
            frame.src_ip = self.ip
        self.sim.schedule(1e-6, self.peer._deliver, frame)

    def add_handler(self, fn):
        self.handlers.append(fn)

    def _deliver(self, frame):
        for fn in self.handlers:
            fn(frame)


@pytest.fixture
def wire(sim):
    a = LoopbackEndpoint(sim, make_ip(10, 0, 9, 1))
    b = LoopbackEndpoint(sim, make_ip(10, 0, 0, 1))
    a.connect(b)
    return a, b


class TestAppServer:
    def test_serves_requests(self, sim, wire, rng):
        client_ep, server_ep = wire
        profile = APP_PROFILES["nginx"]
        server = AppServer(sim, server_ep, profile, rng)
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=5000, rng=rng)
        client.start(0.02)
        sim.run(until=0.05)
        assert server.served > 50
        assert len(client.latencies_us) == server.served

    def test_latency_floor_is_service_time(self, sim, wire, rng):
        client_ep, server_ep = wire
        profile = AppProfile("fixed", 50.0, 0.01, 100, 100)
        AppServer(sim, server_ep, profile, rng)
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=1000, rng=rng)
        client.start(0.02)
        sim.run(until=0.05)
        assert min(client.latencies_us) >= 50.0

    def test_single_worker_queues_under_load(self, sim, wire, rng):
        client_ep, server_ep = wire
        profile = AppProfile("slow", 100.0, 0.01, 100, 100)
        AppServer(sim, server_ep, profile, rng)
        # Offered load 2x capacity: latency must blow up with queueing.
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=20_000, rng=rng)
        client.start(0.02)
        sim.run(until=0.05)
        stats = client.latency_percentiles()
        assert stats["p99"] > 5 * profile.service_mean_us

    def test_low_load_stays_near_floor(self, sim, wire, rng):
        client_ep, server_ep = wire
        profile = AppProfile("fast", 20.0, 0.05, 100, 100)
        AppServer(sim, server_ep, profile, rng)
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=2000, rng=rng)   # 4 % load
        client.start(0.05)
        sim.run(until=0.1)
        stats = client.latency_percentiles()
        assert stats["p50"] < 2.5 * profile.service_mean_us

    def test_p99_timeline_bins(self, sim, wire, rng):
        client_ep, server_ep = wire
        profile = APP_PROFILES["memcached"]
        AppServer(sim, server_ep, profile, rng)
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=5000, rng=rng)
        client.start(0.3)
        sim.run(until=0.4)
        timeline = client.p99_timeline(0.1, 0.3)
        assert len(timeline) == 3
        assert all(v > 0 for v in timeline if v == v)

    def test_responses_matched_fifo(self, sim, wire, rng):
        """The client matches responses to the oldest outstanding request,
        which is exact for a FIFO single-worker server."""
        client_ep, server_ep = wire
        profile = AppProfile("fixed", 30.0, 0.0, 100, 100)
        AppServer(sim, server_ep, profile, rng)
        client = AppClient(sim, client_ep, server_ep.ip, profile,
                           rate_rps=10_000, rng=rng)
        client.start(0.01)
        sim.run(until=0.03)
        # Deterministic service: latency = queue wait + 30 us, monotone in
        # queue depth; no negative or absurd values from mismatching.
        assert all(25.0 <= lat < 10_000 for lat in client.latencies_us)
