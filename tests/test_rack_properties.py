"""Property suite (hypothesis): random rack topologies through the sharded
control plane.

Each example draws a rack shape (hosts, pools, port limit) and a random
interleaving of place / release / fail operations, drives them through the
:class:`~repro.core.allocator.ShardedAllocator` facade in simulated time,
and asserts the PR-8 structural invariants:

* **allocator accounting** -- shards partition the device and assignment
  namespaces; every device's ``allocated`` equals the summed demand of the
  instances currently assigned to it (no over-count across place /
  release / failover interleavings);
* **single-valid-holder** -- at most one valid NIC lease per instance
  across *all* shards at any time, and every live assignment holds one;
* **per-shard lease conservation** -- assignments stay inside their pool's
  shard, point at healthy devices once failovers settle, and every
  failover applied exactly once per device;
* **port limit** -- placement never puts more than ``port_limit`` distinct
  hosts on one multi-headed device;
* **determinism** -- the same topology and schedule replayed twice lands on
  the identical merged state signature and event count.

``CHAOS_MAX_EXAMPLES`` scales the search effort (raised in the nightly
chaos sweep).
"""

import os
from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import OasisConfig
from repro.core.pod import RackBuilder
from repro.errors import AllocationError
from repro.net.packet import make_ip

MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "20"))

#: Per-instance NIC demand used by every synthetic placement.
DEMAND = 0.25

topologies = st.tuples(
    st.integers(min_value=4, max_value=10),   # hosts
    st.integers(min_value=1, max_value=3),    # pools
    st.integers(min_value=2, max_value=4),    # port limit
)

#: (kind, idx) pairs; place is twice as likely so racks actually fill up.
op_lists = st.lists(
    st.tuples(st.sampled_from(["place", "place", "release", "fail"]),
              st.integers(min_value=0, max_value=199)),
    min_size=5, max_size=40,
)


def build_rack(hosts, pools, port_limit, seed=7, batch_window_ms=0.0,
               replicas=0):
    base = OasisConfig()
    config = base.with_(seed=seed, failover=replace(
        base.failover, commit_batch_window_ms=batch_window_ms))
    pod = RackBuilder(hosts=hosts, pools=pools, nics_per_host=2,
                      ssds_per_host=0, port_limit=port_limit,
                      config=config).build()
    if replicas:
        pod.enable_raft(replicas=replicas)
        pod.run(0.2)   # per-shard elections before load
    return pod


def drive(pod, ops, allow_failures=True):
    """Schedule the drawn ops 2 ms apart; ips map to stable hosts."""
    alloc = pod.allocator
    placed = set()
    device_names = sorted(alloc.devices)
    rejected = [0]

    def _do(kind, idx):
        ip = make_ip(10, 2, idx >> 8, (idx & 0xFF) + 1)
        if kind == "place":
            if ip in placed:
                return
            host = pod.hosts[idx % len(pod.hosts)]
            try:
                alloc.place_instance(ip, host.name, DEMAND)
            except AllocationError:
                rejected[0] += 1
                return
            placed.add(ip)
        elif kind == "release":
            if ip not in placed:
                return
            alloc.release_instance(ip, DEMAND)
            placed.discard(ip)
        elif allow_failures:
            alloc.on_failure_report(device_names[idx % len(device_names)])

    for k, (kind, idx) in enumerate(ops):
        pod.sim.schedule(0.002 * (k + 1), _do, kind, idx)
    # Settle: detection/processing delays and any replication drain.
    pod.run(0.002 * (len(ops) + 2) + 0.3)
    return rejected[0]


def check_invariants(pod):
    alloc = pod.allocator
    now = pod.sim.now

    # Shards partition the namespaces: no device or instance appears twice.
    all_devices = [n for s in alloc.shards.values() for n in s.devices]
    assert len(all_devices) == len(set(all_devices))
    all_ips = [ip for s in alloc.shards.values() for ip in s.assignments]
    assert len(all_ips) == len(set(all_ips))

    # Single valid holder across the whole rack.
    holders = {}
    for (ip, dev), lease in alloc.leases._by_key.items():
        if dev in alloc.devices and lease.valid(now):
            holders[ip] = holders.get(ip, 0) + 1
    assert all(count == 1 for count in holders.values()), holders

    for shard in alloc.shards.values():
        on_device = {}
        for ip, dev in shard.assignments.items():
            on_device[dev] = on_device.get(dev, 0) + 1
        for name, device in shard.devices.items():
            assert device.allocated >= -1e-9
            # Exact bookkeeping: allocated == demand x current holders,
            # through any place/release/failover interleaving.
            assert abs(device.allocated
                       - DEMAND * on_device.get(name, 0)) < 1e-6, (
                f"{name}: allocated {device.allocated} vs "
                f"{on_device.get(name, 0)} holders")
        for ip, dev in shard.assignments.items():
            assert dev in shard.devices          # never cross-shard
            assert not shard.devices[dev].failed
            lease = shard.state.leases.get(ip, dev)
            assert lease is not None and lease.valid(now)

    # Exactly-once failovers, no matter how many duplicate reports landed.
    for nic, count in alloc.failover_log.items():
        assert count == 1, f"{nic}: failover applied {count} times"


class TestRackAccounting:
    @given(topo=topologies, ops=op_lists)
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_interleavings_preserve_invariants(self, topo, ops):
        hosts, pools, port_limit = topo
        pod = build_rack(hosts, min(pools, hosts), port_limit)
        drive(pod, ops)
        check_invariants(pod)
        pod.stop()

    @given(topo=topologies, ops=op_lists)
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_placement_respects_port_limit(self, topo, ops):
        # No failures here: failover deliberately prioritises availability
        # over head-count (a backup may temporarily exceed the limit), so
        # the <= port_limit bound is a *placement* invariant.
        hosts, pools, port_limit = topo
        pod = build_rack(hosts, min(pools, hosts), port_limit)
        drive(pod, ops, allow_failures=False)
        for shard in pod.allocator.shards.values():
            heads = {}
            for ip, dev in shard.assignments.items():
                host = shard.state.hosts.get(ip)
                heads.setdefault(dev, set()).add(host)
            for dev, hosts_on in heads.items():
                assert len(hosts_on) <= port_limit, (
                    f"{dev}: {len(hosts_on)} heads > limit {port_limit}")
        check_invariants(pod)
        pod.stop()

    @given(topo=topologies, ops=op_lists)
    @settings(max_examples=max(5, MAX_EXAMPLES // 4), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_schedule_is_deterministic(self, topo, ops):
        hosts, pools, port_limit = topo
        outcomes = []
        for _ in range(2):
            pod = build_rack(hosts, min(pools, hosts), port_limit)
            drive(pod, ops)
            outcomes.append((pod.allocator.state.signature(),
                             pod.sim.processed_events))
            pod.stop()
        assert outcomes[0] == outcomes[1]


class TestRackReplicated:
    @given(topo=topologies, ops=op_lists,
           batch_window_ms=st.sampled_from([0.0, 0.2, 0.5]))
    @settings(max_examples=max(5, MAX_EXAMPLES // 4), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sharded_raft_converges_with_and_without_batching(
            self, topo, ops, batch_window_ms):
        hosts, pools, port_limit = topo
        pod = build_rack(hosts, min(pools, hosts), port_limit,
                         batch_window_ms=batch_window_ms, replicas=3)
        drive(pod, ops)
        pod.run(0.5)   # retry windows + replication drain
        alloc = pod.allocator
        assert alloc.pending_commands == 0
        assert alloc.convergence_ok()
        check_invariants(pod)
        pod.stop()
