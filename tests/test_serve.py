"""Integration tests for multi-tenant QoS serving (PR 10).

End-to-end checks over the serving stack: per-tenant WFQ at the storage
frontend (isolation, conservation, noisy-neighbour containment), the net
frontend's tenant-tagged TX lanes, the fleet ``tenant_slo_burn`` pipeline,
byte-identical same-seed serve runs, and the off-by-default contract
(pods that never arm serving keep the legacy single-queue paths).
"""

import json
from dataclasses import replace

import pytest

from repro.config import OasisConfig
from repro.core.pod import CXLPod
from repro.experiments.serve import run_serve, weighted_fair_share
from repro.net.packet import make_ip
from repro.overload import TenantSpec
from repro.workloads.echo import EchoClient, EchoServer
from repro.workloads.tenants import SERVE_PROFILES, TenantClient, TenantProfile

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def build_serve_pod(seed=7, launch_window=2):
    """Two-host pod with a derated SSD and the 3-class tenant mix armed."""
    base = OasisConfig()
    config = base.with_(
        seed=seed,
        ssd=replace(base.ssd, bandwidth_gbps=0.04),
        overload=replace(base.overload, enabled=True,
                         launch_window=launch_window))
    pod = CXLPod(config=config, mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=SERVER_IP)
    device = pod.add_block_device(inst, ssd)
    capacity = config.ssd.bytes_per_sec / config.ssd.block_size
    profiles = SERVE_PROFILES(capacity)
    pod.enable_multi_tenant(
        {name: profile.spec() for name, profile in profiles.items()})
    clients = {
        name: TenantClient(pod.sim, device, profile,
                           rng=pod.rng.get(f"serve/{name}"))
        for name, profile in profiles.items()}
    return pod, h1, clients


@pytest.fixture(scope="module")
def mix_run():
    """One 3-tenant run with the bg tenant surging 8x mid-run."""
    pod, h1, clients = build_serve_pod()
    for client in clients.values():
        client.start(0.3)
    pod.sim.at(0.1, clients["bg"].set_rate_multiplier, 8.0)
    pod.sim.at(0.2, clients["bg"].set_rate_multiplier, 1.0)
    pod.run(0.35)
    pod.stop()
    return pod, pod.storage_frontends[h1.name], clients


class TestTenantProfile:
    def test_spec_carries_the_contract(self):
        profile = TenantProfile(name="t", weight=3.0, guarantee_iops=100.0)
        spec = profile.spec()
        assert spec.weight == 3.0
        assert spec.guarantee_rate == 100.0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown tenant profile"):
            TenantProfile.from_dict({"name": "t", "rate_mbps": 1.0})

    @pytest.mark.parametrize("bad", [
        {"name": ""},
        {"name": "t", "rate_iops": 0.0},
        {"name": "t", "diurnal_amplitude": 1.5},
        {"name": "t", "slo_us": -1.0},
        {"name": "t", "weight": 0.0},
    ])
    def test_validation_rejects_bad_profiles(self, bad):
        with pytest.raises(ValueError):
            TenantProfile.from_dict(bad)

    def test_diurnal_rate_is_a_pure_function_of_time(self):
        pod, _h1, clients = build_serve_pod()
        web = clients["web"]
        assert web.profile.diurnal_amplitude > 0
        base = web.rate_iops
        assert web.effective_rate == pytest.approx(base)      # sin(0) == 0
        pod.sim.run(until=web.profile.diurnal_period_s / 4)
        assert web.effective_rate == pytest.approx(
            base * (1 + web.profile.diurnal_amplitude))
        pod.stop()


class TestServeIsolation:
    def test_per_tenant_conservation(self, mix_run):
        _pod, frontend, _clients = mix_run
        pending = {}
        for state in frontend._pending.values():
            tenant = state.get("tenant")
            pending[tenant] = pending.get(tenant, 0) + 1
        for tenant, stats in frontend.tenant_stats().items():
            assert stats["submitted"] == (
                stats["completed_ok"] + stats["completed_error"]
                + stats["shed"] + pending.get(tenant, 0)), tenant

    def test_noisy_neighbour_sheds_only_its_own_lane(self, mix_run):
        _pod, frontend, clients = mix_run
        stats = frontend.tenant_stats()
        assert stats["bg"]["shed"] > 0
        assert stats["mc"]["shed"] == 0
        assert stats["web"]["shed"] == 0
        assert clients["mc"].stats.completed_ok == clients["mc"].stats.submitted
        assert clients["bg"].stats.shed == stats["bg"]["shed"]

    def test_wfq_books_balance(self, mix_run):
        _pod, frontend, _clients = mix_run
        for tenant, lane in frontend._admission.per_tenant().items():
            assert lane["pushed"] == lane["admitted"] + lane["shed_full"]
            assert lane["admitted"] == (lane["served"] + lane["shed_sojourn"]
                                        + lane["queued"]), tenant

    def test_client_and_frontend_ledgers_agree(self, mix_run):
        _pod, frontend, clients = mix_run
        stats = frontend.tenant_stats()
        for name, client in clients.items():
            assert client.stats.submitted == stats[name]["submitted"]
            assert client.stats.completed_ok == stats[name]["completed_ok"]


class TestServeExperiment:
    def test_same_seed_serve_json_is_byte_identical(self):
        kwargs = dict(seed=5, pre_s=0.05, surge_s=0.05, post_s=0.05)
        one = json.dumps(run_serve(**kwargs), sort_keys=True)
        two = json.dumps(run_serve(**kwargs), sort_keys=True)
        assert one == two

    def test_weighted_fair_share_water_fills(self):
        shares = weighted_fair_share(
            demands={"a": 100.0, "b": 1000.0, "c": 1000.0},
            weights={"a": 1.0, "b": 2.0, "c": 1.0},
            capacity=700.0)
        # a is demand-capped; the remaining 600 splits 2:1 between b and c.
        assert shares["a"] == pytest.approx(100.0)
        assert shares["b"] == pytest.approx(400.0)
        assert shares["c"] == pytest.approx(200.0)
        assert sum(shares.values()) == pytest.approx(700.0)

    def test_weighted_fair_share_with_slack_caps_at_demand(self):
        shares = weighted_fair_share(
            demands={"a": 10.0, "b": 20.0},
            weights={"a": 1.0, "b": 1.0},
            capacity=1000.0)
        assert shares == {"a": 10.0, "b": 20.0}


class TestOffByDefault:
    def test_pods_without_serving_keep_the_single_queue(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        pod.add_block_device(inst, ssd)
        frontend = pod.storage_frontends[h1.name]
        assert frontend._tenants is None
        assert frontend.tenant_stats() == {}
        net = pod.frontends[h1.name]
        assert net._tx_wfq is None
        assert net.tenant_stats() == {}
        pod.stop()

    def test_multi_tenant_requires_overload_control_and_arms_it(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        pod.add_nic(h0)
        pod.enable_multi_tenant({"t": TenantSpec(weight=2.0)})
        assert pod._overload_on
        assert pod.frontends[h0.name]._tx_wfq is not None
        pod.stop()

    def test_late_joining_frontends_inherit_the_tenant_set(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        pod.add_nic(h0)
        pod.enable_multi_tenant({"t": TenantSpec(weight=2.0)})
        h1 = pod.add_host()             # added after serving was armed
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        pod.add_block_device(inst, ssd)
        assert pod.frontends[h1.name]._tx_wfq is not None
        assert pod.storage_frontends[h1.name]._tenants is not None
        pod.stop()


class TestNetTxWfq:
    def test_tenant_tagged_echo_flows_through_the_tx_wfq(self):
        pod = CXLPod(config=OasisConfig().with_(seed=9), mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()
        pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        pod.enable_multi_tenant({"edge": TenantSpec(weight=2.0)})
        EchoServer(pod.sim, inst, tenant="edge")
        endpoint = pod.add_external_client(ip=CLIENT_IP)
        client = EchoClient(pod.sim, endpoint, SERVER_IP, rate_pps=2000.0,
                            rng=pod.rng.get("serve/echo"), poisson=True,
                            tenant="edge")
        client.start(0.05)
        pod.run(0.08)
        pod.stop()
        assert client.stats.received > 0
        net = pod.frontends[h1.name]
        lanes = net.tenant_stats()
        # Every echoed reply rode the tagged tenant's TX lane.
        assert lanes["edge"]["served"] == client.stats.received
        assert net.tx_forwarded == lanes["edge"]["served"]

    def test_untagged_frames_share_the_default_lane(self):
        pod = CXLPod(config=OasisConfig().with_(seed=9), mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()
        pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        pod.enable_multi_tenant({"edge": TenantSpec(weight=2.0)})
        EchoServer(pod.sim, inst)               # no tenant tag
        endpoint = pod.add_external_client(ip=CLIENT_IP)
        client = EchoClient(pod.sim, endpoint, SERVER_IP, rate_pps=2000.0,
                            rng=pod.rng.get("serve/echo"), poisson=True)
        client.start(0.05)
        pod.run(0.08)
        pod.stop()
        assert client.stats.received > 0
        lanes = pod.frontends[h1.name].tenant_stats()
        assert lanes["-"]["served"] == client.stats.received


class TestTenantSloBurnAlert:
    def test_burning_tenant_fires_the_alert(self):
        base = OasisConfig()
        config = base.with_(
            seed=3, ssd=replace(base.ssd, bandwidth_gbps=0.04))
        pod = CXLPod(config=config, mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        device = pod.add_block_device(inst, ssd)
        pod.enable_fleet_telemetry(period_s=0.002)
        # An SLO no completion can meet: every ok completion is a violation.
        profile = TenantProfile(name="mc", rate_iops=2000.0, slo_us=1.0)
        pod.enable_multi_tenant({"mc": profile.spec()})
        client = TenantClient(pod.sim, device, profile,
                              rng=pod.rng.get("serve/mc"))
        pod.register_tenant_client(client)
        client.start(0.2)
        pod.run(0.25)
        pod.stop()
        assert client.slo_violations == client.stats.completed_ok > 0
        assert pod.fleet.view().tenant_slo_burn("mc") > 0.5
        fired = {event.rule for event in pod.fleet.alerts.log
                 if event.kind == "fire"}
        assert "tenant_slo_burn" in fired

    def test_healthy_tenant_stays_silent(self):
        base = OasisConfig()
        config = base.with_(
            seed=3, ssd=replace(base.ssd, bandwidth_gbps=0.04))
        pod = CXLPod(config=config, mode="oasis")
        h0 = pod.add_host()
        h1 = pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        device = pod.add_block_device(inst, ssd)
        pod.enable_fleet_telemetry(period_s=0.002)
        profile = TenantProfile(name="mc", rate_iops=2000.0, slo_us=50_000.0)
        pod.enable_multi_tenant({"mc": profile.spec()})
        client = TenantClient(pod.sim, device, rng=pod.rng.get("serve/mc"),
                              profile=profile)
        pod.register_tenant_client(client)
        client.start(0.2)
        pod.run(0.25)
        pod.stop()
        assert client.slo_violations == 0
        assert pod.fleet.view().tenant_slo_burn("mc") == 0.0
        fired = {event.rule for event in pod.fleet.alerts.log
                 if event.kind == "fire"}
        assert "tenant_slo_burn" not in fired
