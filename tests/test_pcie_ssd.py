"""Tests for the simulated NVMe SSD."""

import pytest

from repro.config import SSDConfig
from repro.errors import DeviceError, DeviceFailedError
from repro.host.host import Host
from repro.mem.cxl import CXLMemoryPool
from repro.pcie.queues import NVMeCommand
from repro.pcie.ssd import (
    NVME_OP_READ,
    NVME_OP_WRITE,
    NVME_STATUS_FAILED,
    NVME_STATUS_LBA_RANGE,
    NVME_STATUS_OK,
    SimSSD,
)
from repro.sim.core import Simulator, USEC


@pytest.fixture
def rig(sim):
    pool = CXLMemoryPool(size=1 << 20)
    host = Host(sim, "h0", pool)
    ssd = SimSSD(sim, host, SSDConfig(capacity_bytes=1 << 30), name="ssd0")
    comps = []
    ssd.on_completion = comps.append
    return pool, host, ssd, comps


BS = 4096


class TestIO:
    def test_write_then_read_roundtrip(self, sim, rig):
        pool, host, ssd, comps = rig
        data = bytes(range(256)) * 16
        pool.dma_write(0, data)
        ssd.submit(NVMeCommand(NVME_OP_WRITE, slba=5, nlb=1, addr=0, cid=1))
        sim.run_all()
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=5, nlb=1, addr=8192, cid=2))
        sim.run_all()
        assert [c.status for c in comps] == [NVME_STATUS_OK, NVME_STATUS_OK]
        assert pool.dma_read(8192, BS) == data

    def test_unwritten_blocks_read_zero(self, sim, rig):
        pool, host, ssd, comps = rig
        pool.dma_write(0, b"\xFF" * BS)   # pre-dirty the target buffer
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=100, nlb=1, addr=0, cid=1))
        sim.run_all()
        assert pool.dma_read(0, BS) == bytes(BS)

    def test_multi_block_io(self, sim, rig):
        pool, host, ssd, comps = rig
        data = bytes([7]) * (3 * BS)
        pool.dma_write(0, data)
        ssd.submit(NVMeCommand(NVME_OP_WRITE, slba=0, nlb=3, addr=0, cid=1))
        sim.run_all()
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=1, nlb=1, addr=BS * 4, cid=2))
        sim.run_all()
        assert pool.dma_read(BS * 4, BS) == bytes([7]) * BS

    def test_lba_out_of_range_errors(self, sim, rig):
        pool, host, ssd, comps = rig
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=ssd.num_blocks, nlb=1,
                               addr=0, cid=1))
        sim.run_all()
        assert comps[0].status == NVME_STATUS_LBA_RANGE

    def test_zero_nlb_errors(self, sim, rig):
        pool, host, ssd, comps = rig
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=0, addr=0, cid=1))
        sim.run_all()
        assert comps[0].status == NVME_STATUS_LBA_RANGE

    def test_unknown_opcode_rejected(self, sim, rig):
        _, _, ssd, _ = rig
        with pytest.raises(DeviceError):
            ssd.submit(NVMeCommand(0x55, slba=0, nlb=1, addr=0))

    def test_counters(self, sim, rig):
        pool, host, ssd, comps = rig
        pool.dma_write(0, b"x" * BS)
        ssd.submit(NVMeCommand(NVME_OP_WRITE, slba=0, nlb=1, addr=0))
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=1, addr=BS))
        sim.run_all()
        assert ssd.writes == 1 and ssd.reads == 1
        assert ssd.write_bytes == BS and ssd.read_bytes == BS


class TestTiming:
    def test_read_latency_floor(self, sim, rig):
        pool, host, ssd, comps = rig
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=1, addr=0, cid=1))
        sim.run_all()
        assert comps[0].timestamp >= ssd.config.read_latency_us * USEC

    def test_write_faster_than_read(self, sim, rig):
        pool, host, ssd, comps = rig
        ssd.submit(NVMeCommand(NVME_OP_WRITE, slba=0, nlb=1, addr=0, cid=1))
        sim.run_all()
        write_done = comps[0].timestamp
        assert write_done < ssd.config.read_latency_us * USEC

    def test_queued_commands_overlap_media_latency(self, sim, rig):
        """With queue depth, total time for N reads << N * latency."""
        pool, host, ssd, comps = rig
        for i in range(8):
            ssd.submit(NVMeCommand(NVME_OP_READ, slba=i, nlb=1, addr=0, cid=i))
        sim.run_all()
        total = max(c.timestamp for c in comps)
        assert total < 8 * ssd.config.read_latency_us * USEC * 0.5

    def test_bandwidth_serializes_large_transfers(self, sim, rig):
        pool, host, ssd, comps = rig
        nlb = 64   # 256 KB each
        for i in range(4):
            ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=nlb, addr=0, cid=i))
        sim.run_all()
        total = max(c.timestamp for c in comps)
        transfer = 4 * nlb * BS / ssd.config.bytes_per_sec
        assert total >= transfer


class TestFailure:
    def test_failed_drive_errors_new_submissions(self, sim, rig):
        _, _, ssd, _ = rig
        ssd.fail()
        with pytest.raises(DeviceFailedError):
            ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=1, addr=0))

    def test_fail_drains_queued_commands_with_errors(self, sim, rig):
        pool, host, ssd, comps = rig
        for i in range(4):
            ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=1, addr=0, cid=i))
        ssd.fail()
        sim.run_all()
        assert len(comps) == 4
        assert all(c.status == NVME_STATUS_FAILED for c in comps)

    def test_inflight_command_fails_cleanly(self, sim, rig):
        pool, host, ssd, comps = rig
        ssd.submit(NVMeCommand(NVME_OP_READ, slba=0, nlb=1, addr=0, cid=1))
        sim.run(until=10 * USEC)   # mid-flight
        ssd.fail()
        sim.run_all()
        assert comps and comps[-1].status == NVME_STATUS_FAILED
