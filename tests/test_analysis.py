"""Tests for statistics and report rendering helpers."""

import numpy as np
import pytest

from repro.analysis.report import fmt, render_series, render_table
from repro.analysis.stats import (
    bin_bandwidth,
    percentile,
    summarize_latencies,
    utilization_percentile,
    utilization_series,
)


class TestBinning:
    def test_bytes_fall_into_correct_bins(self):
        out = bin_bandwidth(np.array([0.0, 0.15e-5 * 10, 2.5e-5]),
                            np.array([100, 200, 300]),
                            duration_s=3e-5, bin_s=1e-5)
        assert list(out) == [100, 200, 300]

    def test_empty_stream(self):
        out = bin_bandwidth(np.array([]), np.array([]), 1e-3)
        assert out.sum() == 0

    def test_late_packets_clamped_to_last_bin(self):
        out = bin_bandwidth(np.array([9.99e-3]), np.array([50]),
                            duration_s=1e-3, bin_s=1e-4)
        assert out[-1] == 50

    def test_utilization_series_normalized(self):
        # One 125-byte packet in a 10 us bin on a 100 Mbit/s link = 1%.
        series = utilization_series(np.array([0.0]), np.array([125]),
                                    1e-4, link_bytes_per_sec=12.5e6,
                                    bin_s=1e-5)
        assert series[0] == pytest.approx(1.0)

    def test_utilization_percentile(self):
        times = np.zeros(10)
        sizes = np.full(10, 125)
        p100 = utilization_percentile(times, sizes, 1e-4, 12.5e6, 100,
                                      bin_s=1e-5)
        assert p100 == pytest.approx(10.0)

    def test_percentile_helper(self):
        assert percentile([1, 2, 3], 50) == 2
        assert np.isnan(percentile([], 50))


class TestSummaries:
    def test_summarize_latencies(self):
        summary = summarize_latencies(list(range(1, 101)))
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] > summary["p90"] > summary["p50"]

    def test_summarize_empty(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert np.isnan(summary["p50"])


class TestRendering:
    def test_fmt(self):
        assert fmt("text") == "text"
        assert fmt(None) == "-"
        assert fmt(3.14159, 2) == "3.14"
        assert fmt(float("nan")) == "nan"
        assert fmt(7) == "7"

    def test_render_table_aligns_columns(self):
        table = render_table(["name", "value"], [("a", 1.0), ("bb", 22.5)],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2   # aligned widths

    def test_render_series(self):
        out = render_series("S", [1, 2], [10.0, 20.0], "x", "y")
        assert "S" in out and "10.00" in out
