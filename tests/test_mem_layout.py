"""Tests for region allocation (TX areas) and fixed pools (RX buffers)."""

import pytest

from repro.errors import MemoryFault
from repro.mem.layout import FixedPool, Region, RegionAllocator, align_up


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_zero(self):
        assert align_up(0, 64) == 0


class TestRegion:
    def test_contains(self):
        r = Region(100, 50)
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert r.contains(100, 50)
        assert not r.contains(100, 51)

    def test_offset_of(self):
        r = Region(100, 50)
        assert r.offset_of(120) == 20
        with pytest.raises(MemoryFault):
            r.offset_of(99)

    def test_subregion(self):
        r = Region(100, 50, "parent")
        s = r.subregion(10, 20, "child")
        assert s.base == 110 and s.size == 20
        with pytest.raises(MemoryFault):
            r.subregion(40, 20)


class TestRegionAllocator:
    def test_alloc_within_region(self):
        alloc = RegionAllocator(Region(0, 4096))
        r = alloc.alloc(100)
        assert r.size == 100
        assert 0 <= r.base and r.base + 100 <= 4096

    def test_allocations_do_not_overlap(self):
        alloc = RegionAllocator(Region(0, 4096))
        regions = [alloc.alloc(100) for _ in range(10)]
        spans = sorted((r.base, r.base + align_up(r.size, 64)) for r in regions)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_out_of_memory_raises(self):
        alloc = RegionAllocator(Region(0, 256))
        alloc.alloc(200)
        with pytest.raises(MemoryFault):
            alloc.alloc(200)

    def test_free_allows_reuse(self):
        alloc = RegionAllocator(Region(0, 256))
        r = alloc.alloc(256)
        with pytest.raises(MemoryFault):
            alloc.alloc(64)
        alloc.free(r)
        alloc.alloc(256)

    def test_double_free_rejected(self):
        alloc = RegionAllocator(Region(0, 4096))
        r = alloc.alloc(64)
        alloc.free(r)
        with pytest.raises(MemoryFault):
            alloc.free(r)

    def test_coalescing_merges_adjacent_blocks(self):
        alloc = RegionAllocator(Region(0, 4096))
        regions = [alloc.alloc(1024) for _ in range(4)]
        for r in regions:
            alloc.free(r)
        # After coalescing a full-size allocation must succeed again.
        alloc.alloc(4096)

    def test_coalescing_out_of_order_frees(self):
        alloc = RegionAllocator(Region(0, 4096))
        regions = [alloc.alloc(1024) for _ in range(4)]
        for r in (regions[2], regions[0], regions[3], regions[1]):
            alloc.free(r)
        alloc.alloc(4096)

    def test_free_bytes_accounting(self):
        alloc = RegionAllocator(Region(0, 4096))
        before = alloc.free_bytes
        r = alloc.alloc(100)
        assert alloc.free_bytes == before - align_up(100, 64)
        alloc.free(r)
        assert alloc.free_bytes == before

    def test_zero_alloc_rejected(self):
        alloc = RegionAllocator(Region(0, 4096))
        with pytest.raises(MemoryFault):
            alloc.alloc(0)

    def test_alignment_respected(self):
        alloc = RegionAllocator(Region(0, 4096), alignment=256)
        r1 = alloc.alloc(10)
        r2 = alloc.alloc(10)
        assert r1.base % 256 == 0
        assert r2.base % 256 == 0

    def test_bad_alignment_rejected(self):
        with pytest.raises(MemoryFault):
            RegionAllocator(Region(0, 4096), alignment=100)


class TestFixedPool:
    def test_alloc_free_recycle(self):
        pool = FixedPool(Region(0, 8192), 2048)
        assert pool.capacity == 4
        addrs = [pool.alloc() for _ in range(4)]
        assert pool.alloc() is None
        pool.free(addrs[0])
        assert pool.alloc() == addrs[0]

    def test_buffers_do_not_overlap(self):
        pool = FixedPool(Region(0, 8192), 2048)
        addrs = sorted(pool.alloc() for _ in range(4))
        for a, b in zip(addrs, addrs[1:]):
            assert b - a == 2048

    def test_double_free_rejected(self):
        pool = FixedPool(Region(0, 8192), 2048)
        addr = pool.alloc()
        pool.free(addr)
        with pytest.raises(MemoryFault):
            pool.free(addr)

    def test_foreign_free_rejected(self):
        pool = FixedPool(Region(0, 8192), 2048)
        with pytest.raises(MemoryFault):
            pool.free(12345)

    def test_outstanding_tracking(self):
        pool = FixedPool(Region(0, 8192), 2048)
        addr = pool.alloc()
        assert pool.outstanding == 1
        assert pool.available == 3
        pool.free(addr)
        assert pool.outstanding == 0

    def test_unaligned_buffer_size_rejected(self):
        with pytest.raises(MemoryFault):
            FixedPool(Region(0, 8192), 1000)

    def test_too_small_region_rejected(self):
        with pytest.raises(MemoryFault):
            FixedPool(Region(0, 1024), 2048)
