"""Tests for RPC transports, including RPCs over real 64 B message channels."""

import numpy as np
import pytest

from repro.core.datapath import SharedRegions
from repro.core.raft.node import RaftNode
from repro.core.raft.rpc import FRAGMENT_PAYLOAD, ChannelRpcTransport, DirectTransport
from repro.mem.cache import HostCache
from repro.mem.cxl import CXLMemoryPool
from repro.sim.core import MSEC, USEC, Simulator


class TestDirectTransport:
    def test_delivery_with_latency(self, sim):
        transport = DirectTransport(sim, latency_us=10.0)
        got = []
        transport.register("b", lambda src, m: got.append((sim.now, src, m)))
        transport.send("a", "b", {"x": 1})
        sim.run_all()
        assert got == [(pytest.approx(10 * USEC), "a", {"x": 1})]

    def test_unknown_destination_dropped(self, sim):
        transport = DirectTransport(sim)
        transport.send("a", "nobody", {})
        sim.run_all()   # no exception

    def test_partition_blocks_both_directions(self, sim):
        transport = DirectTransport(sim)
        got = []
        transport.register("a", lambda s, m: got.append(m))
        transport.register("b", lambda s, m: got.append(m))
        transport.partition("b")
        transport.send("a", "b", {"x": 1})
        transport.send("b", "a", {"x": 2})
        sim.run_all()
        assert got == []
        transport.heal("b")
        transport.send("a", "b", {"x": 3})
        sim.run_all()
        assert got == [{"x": 3}]


def build_channel_transport(sim):
    pool = CXLMemoryPool(size=32 << 20)
    regions = SharedRegions(pool)
    transport = ChannelRpcTransport(sim)
    caches = {name: HostCache(pool, name) for name in ("a", "b")}
    from repro.core.datapath import DoorbellChannel

    for src, dst in (("a", "b"), ("b", "a")):
        layout = regions.alloc_ring(64, f"rpc-{src}-{dst}", slots=256)
        channel = DoorbellChannel(sim, layout, caches[src], caches[dst],
                                  f"rpc-{src}-{dst}", hop_us=1.0)
        transport.add_channel(src, dst, channel)
    return transport


class TestChannelRpcTransport:
    def test_small_message_single_fragment(self, sim):
        transport = build_channel_transport(sim)
        got = []
        transport.register("b", lambda src, m: got.append(m))
        transport.send("a", "b", {"op": "hi"})
        sim.run(until=1 * MSEC)
        assert got == [{"op": "hi"}]
        assert transport.fragments_sent == 1

    def test_large_message_fragments_and_reassembles(self, sim):
        transport = build_channel_transport(sim)
        got = []
        transport.register("b", lambda src, m: got.append(m))
        big = {"data": "x" * (FRAGMENT_PAYLOAD * 5)}
        transport.send("a", "b", big)
        sim.run(until=1 * MSEC)
        assert got == [big]
        assert transport.fragments_sent > 5

    def test_bidirectional(self, sim):
        transport = build_channel_transport(sim)
        got_a, got_b = [], []
        transport.register("a", lambda src, m: got_a.append(m))
        transport.register("b", lambda src, m: got_b.append(m))
        transport.send("a", "b", {"n": 1})
        transport.send("b", "a", {"n": 2})
        sim.run(until=1 * MSEC)
        assert got_b == [{"n": 1}]
        assert got_a == [{"n": 2}]

    def test_interleaved_rpcs_reassemble_independently(self, sim):
        transport = build_channel_transport(sim)
        got = []
        transport.register("b", lambda src, m: got.append(m))
        for i in range(10):
            transport.send("a", "b", {"i": i, "pad": "y" * 100})
        sim.run(until=5 * MSEC)
        assert [m["i"] for m in got] == list(range(10))

    def test_missing_channel_raises(self, sim):
        transport = ChannelRpcTransport(sim)
        from repro.errors import ChannelError

        with pytest.raises(ChannelError):
            transport.send("a", "z", {})


class TestRaftOverChannels:
    def test_election_and_commit_over_real_channels(self, sim):
        """§3.5: the allocator's Raft RPCs ride Oasis message channels."""
        pool = CXLMemoryPool(size=64 << 20)
        regions = SharedRegions(pool)
        transport = ChannelRpcTransport(sim)
        ids = ["r0", "r1", "r2"]
        caches = {i: HostCache(pool, i) for i in ids}
        from repro.core.datapath import DoorbellChannel

        for src in ids:
            for dst in ids:
                if src == dst:
                    continue
                layout = regions.alloc_ring(64, f"{src}-{dst}", slots=512)
                channel = DoorbellChannel(sim, layout, caches[src], caches[dst],
                                          f"{src}-{dst}", hop_us=1.0)
                transport.add_channel(src, dst, channel)

        applied = {i: [] for i in ids}
        nodes = []
        for k, node_id in enumerate(ids):
            node = RaftNode(
                sim, node_id, ids, transport,
                apply_cb=lambda idx, cmd, n=node_id: applied[n].append(cmd),
                rng=np.random.default_rng(k),
            )
            nodes.append(node)
            node.start()
        sim.run(until=2.0)
        leaders = [n for n in nodes if n.is_leader]
        assert len(leaders) == 1
        leaders[0].propose({"op": "failover", "nic": "nic0"})
        sim.run(until=3.0)
        for commands in applied.values():
            assert commands == [{"op": "failover", "nic": "nic0"}]
