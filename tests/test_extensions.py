"""Tests for the §6 extensions: sharded channels and the load balancer."""

import pytest

from repro.channel.sharded import ShardedChannelGroup, sharded_saturation
from repro.core.allocator.balancer import LoadBalancer
from repro.core.pod import CXLPod
from repro.errors import ChannelError
from repro.mem.cxl import CXLMemoryPool
from repro.net.packet import make_ip

SERVER_IP = make_ip(10, 0, 0, 1)


def msg(i):
    return bytes([1]) + i.to_bytes(8, "little") + bytes(7)


class TestShardedChannels:
    def test_flow_pinned_to_one_shard(self):
        pool = CXLMemoryPool(size=8 << 20)
        group = ShardedChannelGroup(pool, 0, shards=4, slots=64)
        assert group.shard_of(5) == group.shard_of(5)
        assert group.shard_of(1) != group.shard_of(2) or group.shards == 1

    def test_per_shard_fifo(self):
        pool = CXLMemoryPool(size=8 << 20)
        group = ShardedChannelGroup(pool, 0, shards=4, slots=64)
        flows = [0, 1, 2, 3]
        per_flow = {f: [] for f in flows}
        for i in range(32):
            flow = flows[i % 4]
            payload = msg(i)
            group.send(flow, payload)
            per_flow[flow].append(payload)
        for flow in flows:
            got, _ = group.drain_shard(group.shard_of(flow))
            assert got == per_flow[flow]

    def test_drain_all_collects_everything(self):
        pool = CXLMemoryPool(size=8 << 20)
        group = ShardedChannelGroup(pool, 0, shards=2, slots=64)
        for i in range(10):
            group.send(i, msg(i))
        got, _ = group.drain_all()
        assert len(got) == 10

    def test_zero_shards_rejected(self):
        pool = CXLMemoryPool(size=8 << 20)
        with pytest.raises(ChannelError):
            ShardedChannelGroup(pool, 0, shards=0)

    def test_throughput_scales_linearly(self):
        """The §6 claim: aggregate throughput ~ linear in shard count."""
        results = sharded_saturation(shard_counts=(1, 4), n_messages=6000,
                                     slots=1024)
        assert results[4] == pytest.approx(4 * results[1], rel=0.15)


class TestLoadBalancer:
    def _pod(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        return pod, nic0, nic1

    def test_migrates_off_hot_nic(self):
        pod, nic0, nic1 = self._pod()
        balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=100)
        balancer.start()
        line = pod.config.nic.bytes_per_sec
        pod.allocator.devices[nic0.name].measured_load = 0.9 * line
        pod.allocator.devices[nic1.name].measured_load = 0.1 * line
        pod.run(0.3)
        assert balancer.migrations == 1
        assert pod.allocator.assignments[SERVER_IP] == nic1.name
        balancer.stop()

    def test_no_migration_below_high_water(self):
        pod, nic0, nic1 = self._pod()
        balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=100)
        balancer.start()
        line = pod.config.nic.bytes_per_sec
        pod.allocator.devices[nic0.name].measured_load = 0.5 * line
        pod.run(0.3)
        assert balancer.migrations == 0
        balancer.stop()

    def test_no_migration_when_target_also_busy(self):
        pod, nic0, nic1 = self._pod()
        balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=100)
        balancer.start()
        line = pod.config.nic.bytes_per_sec
        pod.allocator.devices[nic0.name].measured_load = 0.9 * line
        pod.allocator.devices[nic1.name].measured_load = 0.6 * line
        pod.run(0.3)
        assert balancer.migrations == 0
        balancer.stop()

    def test_cooldown_prevents_storms(self):
        pod, nic0, nic1 = self._pod()
        balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=100,
                                cooldown_s=60.0)
        balancer.start()
        line = pod.config.nic.bytes_per_sec
        # Both directions look permanently hot: without the cooldown the
        # instance would ping-pong on every tick.
        pod.allocator.devices[nic0.name].measured_load = 0.9 * line
        pod.allocator.devices[nic1.name].measured_load = 0.1 * line
        pod.run(0.25)
        pod.allocator.devices[nic0.name].measured_load = 0.1 * line
        pod.allocator.devices[nic1.name].measured_load = 0.9 * line
        pod.run(0.5)
        assert balancer.migrations == 1

    def test_backups_never_targets(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0 = pod.add_nic(h0)
        backup = pod.add_nic(h1, is_backup=True)
        pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
        balancer = LoadBalancer(pod.sim, pod.allocator, interval_ms=100)
        balancer.start()
        line = pod.config.nic.bytes_per_sec
        pod.allocator.devices[nic0.name].measured_load = 0.9 * line
        pod.run(0.3)
        assert balancer.migrations == 0    # only candidate is the backup
        assert pod.allocator.assignments[SERVER_IP] == nic0.name


class TestCxlLinkContention:
    def test_link_queues_serialize(self):
        from repro.mem.cxl import CXLMemoryPool
        from repro.host.host import Host
        from repro.sim.core import Simulator

        sim = Simulator()
        host = Host(sim, "h0", CXLMemoryPool(size=1 << 20))
        d1 = host.link_transfer_delay(150_000, "read")
        d2 = host.link_transfer_delay(150_000, "read")
        assert d2 > d1    # second transfer waits behind the first

    def test_directions_independent(self):
        from repro.mem.cxl import CXLMemoryPool
        from repro.host.host import Host
        from repro.sim.core import Simulator

        sim = Simulator()
        host = Host(sim, "h0", CXLMemoryPool(size=1 << 20))
        host.occupy_link(1.0, "read")
        assert host.link_transfer_delay(1500, "write") < 1e-3

    def test_local_transfers_skip_the_link(self):
        from repro.mem.cxl import CXLMemoryPool
        from repro.host.host import Host
        from repro.sim.core import Simulator

        sim = Simulator()
        host = Host(sim, "h0", CXLMemoryPool(size=1 << 20))
        host.occupy_link(1.0, "read")
        assert host.link_transfer_delay(1500, "read", local=True) < 1e-3

    def test_backlog_drains_with_time(self):
        from repro.mem.cxl import CXLMemoryPool
        from repro.host.host import Host
        from repro.sim.core import Simulator

        sim = Simulator()
        host = Host(sim, "h0", CXLMemoryPool(size=1 << 20))
        host.occupy_link(1e-3, "read")
        assert host.link_backlog_s("read") == pytest.approx(1e-3)
        sim.run(until=2e-3)
        assert host.link_backlog_s("read") == 0.0


class TestCxlQoS:
    def _echo_p99(self, hog_gbps, cap=None):
        import numpy as np
        from repro.workloads.echo import EchoClient, EchoServer
        from repro.workloads.interference import CXLBandwidthLoad

        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
        EchoServer(pod.sim, inst)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        ec = EchoClient(pod.sim, client, SERVER_IP, packet_size=1500,
                        rate_pps=20_000)
        if hog_gbps:
            CXLBandwidthLoad(pod.sim, h0, hog_gbps, rdt_cap_gbps=cap).start()
        ec.start(0.03)
        pod.run(0.06)
        pod.stop()
        return ec.stats.percentile_us(99)

    def test_saturating_hog_inflates_latency(self):
        """§6: a colocated use case that *oversubscribes* the link (offered
        demand beyond the x8 link's ~29 GB/s) makes DMA backlog grow without
        bound and impairs the Oasis datapath."""
        quiet = self._echo_p99(0)
        contended = self._echo_p99(40.0)   # oversubscribed x8 link
        assert contended > quiet + 10.0

    def test_rdt_cap_restores_latency(self):
        """§6 mitigation: hardware bandwidth partitioning (Intel RDT)."""
        contended = self._echo_p99(40.0)
        capped = self._echo_p99(40.0, cap=15.0)
        assert capped < contended / 2

    def test_moderate_hog_harmless(self):
        """§2.3: typical colocated uses (2-3 GB/s) leave ample headroom."""
        quiet = self._echo_p99(0)
        light = self._echo_p99(3.0)
        assert light < quiet + 2.0
