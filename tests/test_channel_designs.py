"""Tests for the four Figure 6 receiver designs.

All four must be functionally identical (same delivered message stream); they
differ only in cost profile and cache behaviour.  A fifth, deliberately
broken receiver shows the staleness failure the invalidations exist to
prevent.
"""

import pytest

from repro.channel.designs import (
    RECEIVER_DESIGNS,
    InvalidateConsumedReceiver,
    InvalidatePrefetchedReceiver,
    NaivePrefetchReceiver,
    make_receiver,
)
from repro.channel.protocol import ChannelReceiver, ChannelSender
from repro.channel.ring import RingLayout
from repro.mem.cache import HostCache
from repro.mem.layout import Region


def build(small_pool, design, slots=32, counter_batch=1, **kwargs):
    size = RingLayout.required_bytes(slots, 16)
    layout = RingLayout(Region(0, size), slots, 16)
    sender = ChannelSender(layout, HostCache(small_pool, "s"))
    receiver = make_receiver(design, layout, HostCache(small_pool, "r"),
                             counter_batch=counter_batch, **kwargs)
    return sender, receiver


def msg(i):
    return bytes([1]) + i.to_bytes(8, "little") + bytes(7)


def pump(sender, receiver, n, max_polls_per_msg=10):
    """Send n messages one at a time; receiver polls until it gets each."""
    got = []
    for i in range(n):
        sender.send(msg(i))
        for _ in range(max_polls_per_msg):
            payload, _ = receiver.poll()
            if payload is not None:
                got.append(payload)
                break
    return got


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("design", sorted(RECEIVER_DESIGNS))
    def test_delivers_all_messages_in_order(self, small_pool, design):
        sender, receiver = build(small_pool, design)
        got = pump(sender, receiver, 100)
        assert got == [msg(i) for i in range(100)]

    @pytest.mark.parametrize("design", sorted(RECEIVER_DESIGNS))
    def test_survives_ring_wrap(self, small_pool, design):
        sender, receiver = build(small_pool, design, slots=16)
        got = pump(sender, receiver, 64)   # 4 laps
        assert len(got) == 64

    @pytest.mark.parametrize("design", sorted(RECEIVER_DESIGNS))
    def test_batch_bursts(self, small_pool, design):
        sender, receiver = build(small_pool, design, slots=64, counter_batch=8)
        for i in range(32):
            ok, _ = sender.try_send(msg(i))
            assert ok
        sender.flush()
        got = []
        polls = 0
        while len(got) < 32 and polls < 500:
            payload, _ = receiver.poll()
            polls += 1
            if payload is not None:
                got.append(payload)
        assert got == [msg(i) for i in range(32)]


class TestStaleness:
    def test_receiver_without_invalidation_starves_after_wrap(self, small_pool):
        """A receiver that never invalidates spins on stale cached lines --
        the §3.2.2 failure mode that motivates the whole design space."""

        class NoInvalidateReceiver(ChannelReceiver):
            design = "broken-no-invalidate"

            def poll(self):
                payload, cost = self._check_slot(self.next_seq)
                if payload is not None:
                    cost += self._consume(self.next_seq)
                return payload, cost

        size = RingLayout.required_bytes(16, 16)
        layout = RingLayout(Region(0, size), 16, 16)
        sender = ChannelSender(layout, HostCache(small_pool, "s"))
        receiver = NoInvalidateReceiver(layout, HostCache(small_pool, "r"),
                                        counter_batch=1)
        # A whole lap written before any poll is read fresh (demand misses).
        for i in range(16):
            sender.try_send(msg(i))
        sender.flush()
        got, _ = receiver.poll_batch(limit=32)
        assert len(got) == 16
        # From now on every ring line is stale in the receiver's cache and it
        # never invalidates: new messages are permanently invisible.
        sender.send(msg(100))
        for _ in range(50):
            payload, _ = receiver.poll()
            assert payload is None

    def test_naive_prefetch_recovers_via_empty_poll_invalidate(self, small_pool):
        sender, receiver = build(small_pool, "naive-prefetch", slots=16)
        got = pump(sender, receiver, 40)
        assert len(got) == 40

    def test_invalidate_consumed_keeps_prefetch_effective(self, small_pool):
        sender, receiver = build(small_pool, "invalidate-consumed", slots=64,
                                 counter_batch=8, prefetch_depth=4)
        for i in range(64):
            sender.try_send(msg(i))
        sender.flush()
        got, _ = receiver.poll_batch(limit=64)
        assert len(got) == 64
        # Streaming consumption re-issued prefetches beyond the first lines.
        assert receiver.cache.stats.prefetches_issued > 0


class TestDesignSpecificBehaviour:
    def test_bypass_never_keeps_ring_lines(self, small_pool):
        sender, receiver = build(small_pool, "bypass-cache")
        pump(sender, receiver, 8)
        # Every poll starts with a fenced invalidate+MFENCE of the current
        # line (the flush of a not-yet-cached line does not count as an
        # invalidation, so count fences).
        assert receiver.cache.stats.fences >= 8

    def test_invalidate_prefetched_resets_horizon(self, small_pool):
        sender, receiver = build(small_pool, "invalidate-prefetched",
                                 slots=64, prefetch_depth=4)
        for i in range(16):
            sender.try_send(msg(i))
        sender.flush()
        receiver.poll_batch(limit=16)
        horizon_before = receiver._prefetch_horizon
        receiver.poll()          # empty poll invalidates the window
        assert receiver._prefetch_horizon <= horizon_before

    def test_make_receiver_rejects_unknown_design(self, small_pool):
        size = RingLayout.required_bytes(16, 16)
        layout = RingLayout(Region(0, size), 16, 16)
        with pytest.raises(ValueError):
            make_receiver("nonsense", layout, HostCache(small_pool, "r"))

    def test_design_registry_complete(self):
        assert set(RECEIVER_DESIGNS) == {
            "bypass-cache", "naive-prefetch", "invalidate-consumed",
            "invalidate-prefetched",
        }
