"""Tests for the Raft consensus substrate."""

import numpy as np
import pytest

from repro.core.raft.log import LogEntry, RaftLog
from repro.core.raft.node import CANDIDATE, FOLLOWER, LEADER, RaftNode
from repro.core.raft.rpc import DirectTransport
from repro.sim.core import MSEC, Simulator


def build_cluster(sim, n=3, latency_us=5.0, seed=0):
    transport = DirectTransport(sim, latency_us=latency_us)
    ids = [f"n{i}" for i in range(n)]
    applied = {node_id: [] for node_id in ids}
    nodes = []
    for i, node_id in enumerate(ids):
        node = RaftNode(
            sim, node_id, ids, transport,
            apply_cb=lambda idx, cmd, nid=node_id: applied[nid].append((idx, cmd)),
            rng=np.random.default_rng(seed * 100 + i),
        )
        nodes.append(node)
    for node in nodes:
        node.start()
    return transport, nodes, applied


def leader_of(nodes):
    leaders = [n for n in nodes if n.is_leader]
    return leaders[0] if len(leaders) == 1 else None


class TestRaftLog:
    def test_append_and_terms(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        log.append(LogEntry(2, "b"))
        assert log.last_index == 2
        assert log.last_term == 2
        assert log.term_at(1) == 1
        assert log.term_at(0) == 0

    def test_matches_consistency_check(self):
        log = RaftLog()
        log.append(LogEntry(1, "a"))
        assert log.matches(0, 0)
        assert log.matches(1, 1)
        assert not log.matches(1, 2)
        assert not log.matches(5, 1)

    def test_merge_appends_new_entries(self):
        log = RaftLog()
        log.merge(0, [LogEntry(1, "a"), LogEntry(1, "b")])
        assert log.last_index == 2

    def test_merge_truncates_conflicts(self):
        log = RaftLog()
        log.merge(0, [LogEntry(1, "a"), LogEntry(1, "b"), LogEntry(1, "c")])
        log.merge(1, [LogEntry(2, "B")])
        assert log.last_index == 2
        assert log.entry(2).command == "B"
        assert log.entry(2).term == 2

    def test_merge_idempotent(self):
        log = RaftLog()
        entries = [LogEntry(1, "a"), LogEntry(1, "b")]
        log.merge(0, entries)
        log.merge(0, entries)
        assert log.last_index == 2

    def test_up_to_date(self):
        log = RaftLog()
        log.append(LogEntry(2, "a"))
        assert log.up_to_date(1, 3)        # higher term wins
        assert log.up_to_date(1, 2)        # same term, same length
        assert log.up_to_date(2, 2)        # same term, longer
        assert not log.up_to_date(5, 1)    # lower term loses


class TestElection:
    def test_exactly_one_leader_elected(self, sim):
        _, nodes, _ = build_cluster(sim)
        sim.run(until=2.0)
        assert leader_of(nodes) is not None
        assert sum(n.is_leader for n in nodes) == 1

    def test_leader_crash_triggers_reelection(self, sim):
        _, nodes, _ = build_cluster(sim)
        sim.run(until=2.0)
        old = leader_of(nodes)
        old.crash()
        sim.run(until=4.0)
        alive = [n for n in nodes if n.alive]
        new = leader_of(alive)
        assert new is not None and new is not old
        assert new.current_term > old.current_term

    def test_crashed_leader_rejoins_as_follower(self, sim):
        _, nodes, _ = build_cluster(sim)
        sim.run(until=2.0)
        old = leader_of(nodes)
        old.crash()
        sim.run(until=4.0)
        old.restart()
        sim.run(until=6.0)
        assert sum(n.is_leader for n in nodes) == 1
        assert old.state == FOLLOWER

    def test_partitioned_node_cannot_win(self, sim):
        transport, nodes, _ = build_cluster(sim)
        sim.run(until=2.0)
        follower = next(n for n in nodes if not n.is_leader)
        transport.partition(follower.node_id)
        sim.run(until=6.0)
        # It keeps electing itself but never gets a majority.
        assert not follower.is_leader
        healthy = [n for n in nodes if n is not follower]
        assert sum(n.is_leader for n in healthy) == 1


class TestReplication:
    def test_committed_command_applies_everywhere(self, sim):
        _, nodes, applied = build_cluster(sim)
        sim.run(until=2.0)
        leader = leader_of(nodes)
        index = leader.propose({"op": "noop"})
        assert index == 1
        sim.run(until=3.0)
        for node_id, entries in applied.items():
            assert entries == [(1, {"op": "noop"})]

    def test_propose_on_follower_rejected(self, sim):
        _, nodes, _ = build_cluster(sim)
        sim.run(until=2.0)
        follower = next(n for n in nodes if not n.is_leader)
        assert follower.propose("x") is None

    def test_many_commands_apply_in_order(self, sim):
        _, nodes, applied = build_cluster(sim)
        sim.run(until=2.0)
        leader = leader_of(nodes)
        for i in range(20):
            leader.propose(i)
        sim.run(until=4.0)
        for entries in applied.values():
            assert [cmd for _, cmd in entries] == list(range(20))

    def test_command_survives_leader_change(self, sim):
        _, nodes, applied = build_cluster(sim)
        sim.run(until=2.0)
        leader = leader_of(nodes)
        leader.propose("before-crash")
        sim.run(until=2.5)   # replicated + committed
        leader.crash()
        sim.run(until=5.0)
        new_leader = leader_of([n for n in nodes if n.alive])
        new_leader.propose("after-crash")
        sim.run(until=7.0)
        for node in nodes:
            if node.alive:
                commands = [node.log.entry(i).command
                            for i in range(1, node.commit_index + 1)]
                assert "before-crash" in commands
                assert "after-crash" in commands

    def test_lagging_follower_catches_up(self, sim):
        transport, nodes, applied = build_cluster(sim)
        sim.run(until=2.0)
        leader = leader_of(nodes)
        follower = next(n for n in nodes if not n.is_leader)
        transport.partition(follower.node_id)
        for i in range(5):
            leader.propose(i)
        sim.run(until=3.0)
        transport.heal(follower.node_id)
        sim.run(until=6.0)
        assert follower.commit_index >= 5
        assert [cmd for _, cmd in applied[follower.node_id]][:5] == list(range(5))

    def test_single_node_cluster_commits_immediately(self, sim):
        transport = DirectTransport(sim)
        applied = []
        node = RaftNode(sim, "solo", ["solo"], transport,
                        apply_cb=lambda i, c: applied.append(c),
                        rng=np.random.default_rng(0))
        node.start()
        sim.run(until=1.0)
        assert node.is_leader
        node.propose("only")
        sim.run(until=1.1)
        assert applied == ["only"]
