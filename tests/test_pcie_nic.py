"""Tests for the simulated NIC (TX/RX flows, flow tagging, failures)."""

import pytest

from repro.config import NICConfig, OasisConfig
from repro.errors import DeviceError, DeviceFailedError
from repro.host.host import Host
from repro.mem.cxl import CXLMemoryPool
from repro.net.packet import Frame, make_ip, make_mac
from repro.net.switch import LearningSwitch
from repro.pcie.nic import SimNIC
from repro.pcie.queues import RxDescriptor, TxDescriptor
from repro.sim.core import Simulator


@pytest.fixture
def rig(sim):
    pool = CXLMemoryPool(size=1 << 20)
    host = Host(sim, "h0", pool)
    switch = LearningSwitch(sim)
    nic = SimNIC(sim, host, make_mac(0), NICConfig(), name="nic0")
    nic.connect(switch.new_port())
    peer_port = switch.new_port()
    peer_inbox = []
    peer_port.attach(peer_inbox.append)
    return pool, host, switch, nic, peer_port, peer_inbox


def frame_bytes(pool, addr, *, dst_mac, payload=b"data", dst_ip=0):
    frame = Frame(dst_mac=dst_mac, src_mac=make_mac(0), dst_ip=dst_ip,
                  payload=payload)
    data = frame.pack()
    pool.dma_write(addr, data)
    return frame, len(data)


class TestTx:
    def test_tx_descriptor_emits_frame(self, sim, rig):
        pool, host, switch, nic, peer_port, peer_inbox = rig
        frame, size = frame_bytes(pool, 0, dst_mac=make_mac(9))
        nic.post_tx(TxDescriptor(addr=0, length=size))
        sim.run_all()
        assert len(peer_inbox) == 1
        assert peer_inbox[0].payload == b"data"

    def test_tx_completion_carries_cookie(self, sim, rig):
        pool, host, switch, nic, _, _ = rig
        comps = []
        nic.on_tx_complete = comps.append
        _, size = frame_bytes(pool, 0, dst_mac=make_mac(9))
        nic.post_tx(TxDescriptor(addr=0, length=size, cookie="ctx"))
        sim.run_all()
        assert comps[0].descriptor.cookie == "ctx"
        assert comps[0].status == 0

    def test_tx_serializes_at_line_rate(self, sim, rig):
        pool, host, switch, nic, peer_port, peer_inbox = rig
        arrivals = []
        peer_port.attach(lambda f: arrivals.append(sim.now))
        frame = Frame(dst_mac=make_mac(9), src_mac=nic.mac,
                      payload=b"x" * 1400, wire_size=1500)
        pool.dma_write(0, frame.pack())
        for i in range(4):
            nic.post_tx(TxDescriptor(addr=0, length=frame.packed_size))
        sim.run_all()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        wire_time = 1500 / nic.config.bytes_per_sec
        for gap in gaps:
            assert gap >= wire_time * 0.99

    def test_tx_on_failed_nic_rejected(self, sim, rig):
        pool, host, switch, nic, _, _ = rig
        nic.fail()
        with pytest.raises(DeviceFailedError):
            nic.post_tx(TxDescriptor(addr=0, length=64))

    def test_tx_ring_full_rejected(self, sim, rig):
        pool, host, switch, nic, _, _ = rig
        _, size = frame_bytes(pool, 0, dst_mac=make_mac(9))
        for _ in range(nic.config.tx_queue_depth):
            nic.tx_ring.post(TxDescriptor(addr=0, length=size))
        with pytest.raises(DeviceError):
            nic.post_tx(TxDescriptor(addr=0, length=size))

    def test_tx_error_completion_when_link_down(self, sim, rig):
        pool, host, switch, nic, _, _ = rig
        comps = []
        nic.on_tx_complete = comps.append
        _, size = frame_bytes(pool, 0, dst_mac=make_mac(9))
        nic.post_tx(TxDescriptor(addr=0, length=size))
        nic.port.set_enabled(False)
        sim.run_all()
        assert comps[0].status == 1

    def test_send_raw_bypasses_queue(self, sim, rig):
        pool, host, switch, nic, _, peer_inbox = rig
        nic.send_raw(Frame(dst_mac=make_mac(9), src_mac=make_mac(7)))
        sim.run_all()
        assert len(peer_inbox) == 1
        assert switch.port_of_mac(make_mac(7)) == 0   # learned borrowed MAC


class TestRx:
    def _rx_setup(self, sim, rig, tag_ip=None):
        pool, host, switch, nic, peer_port, _ = rig
        comps = []
        nic.on_rx = comps.append
        nic.post_rx(RxDescriptor(addr=4096, capacity=2048))
        if tag_ip is not None:
            nic.add_flow_tag(tag_ip)
        return pool, nic, peer_port, comps

    def test_rx_dma_writes_buffer_and_completes(self, sim, rig):
        pool, nic, peer_port, comps = self._rx_setup(sim, rig)
        frame = Frame(dst_mac=nic.mac, src_mac=make_mac(9), payload=b"inbound")
        peer_port.receive(frame)
        sim.run_all()
        assert len(comps) == 1
        stored = Frame.unpack(pool.dma_read(4096, comps[0].length))
        assert stored.payload == b"inbound"

    def test_rx_flow_tag_matched(self, sim, rig):
        ip = make_ip(10, 0, 0, 5)
        pool, nic, peer_port, comps = self._rx_setup(sim, rig, tag_ip=ip)
        peer_port.receive(Frame(dst_mac=nic.mac, src_mac=make_mac(9),
                                dst_ip=ip))
        sim.run_all()
        assert comps[0].tag == nic.flow_table[ip]

    def test_rx_unmatched_gets_none_tag(self, sim, rig):
        pool, nic, peer_port, comps = self._rx_setup(sim, rig)
        peer_port.receive(Frame(dst_mac=nic.mac, src_mac=make_mac(9),
                                dst_ip=make_ip(1, 2, 3, 4)))
        sim.run_all()
        assert comps[0].tag is None

    def test_rx_no_buffer_drops(self, sim, rig):
        pool, host, switch, nic, peer_port, _ = rig
        nic.on_rx = lambda c: None
        peer_port.receive(Frame(dst_mac=nic.mac, src_mac=make_mac(9)))
        sim.run_all()
        assert nic.rx_dropped_no_buffer == 1

    def test_rx_on_failed_nic_drops(self, sim, rig):
        pool, nic, peer_port, comps = self._rx_setup(sim, rig)
        nic.fail()
        peer_port.receive(Frame(dst_mac=nic.mac, src_mac=make_mac(9)))
        sim.run_all()
        assert comps == []
        assert nic.rx_dropped_down == 1

    def test_oversized_frame_rejected(self, sim, rig):
        pool, host, switch, nic, peer_port, _ = rig
        nic.post_rx(RxDescriptor(addr=4096, capacity=64))
        with pytest.raises(DeviceError):
            nic._on_wire_rx(Frame(dst_mac=nic.mac, src_mac=make_mac(9),
                                  payload=b"z" * 200))


class TestFlowTable:
    def test_add_returns_stable_tag(self, sim, rig):
        _, _, _, nic, _, _ = rig
        ip = make_ip(10, 0, 0, 1)
        tag = nic.add_flow_tag(ip)
        assert nic.add_flow_tag(ip) == tag

    def test_remove(self, sim, rig):
        _, _, _, nic, _, _ = rig
        ip = make_ip(10, 0, 0, 1)
        nic.add_flow_tag(ip)
        nic.remove_flow_tag(ip)
        assert ip not in nic.flow_table

    def test_table_capacity_enforced(self, sim, rig):
        _, _, _, nic, _, _ = rig
        nic.config = NICConfig(max_flow_tags=2)
        nic.add_flow_tag(1)
        nic.add_flow_tag(2)
        with pytest.raises(DeviceError):
            nic.add_flow_tag(3)

    def test_tagging_unsupported_raises(self, sim, rig):
        _, _, _, nic, _, _ = rig
        nic.config = NICConfig(supports_flow_tagging=False)
        with pytest.raises(DeviceError):
            nic.add_flow_tag(1)


class TestLinkState:
    def test_link_reflects_port_state(self, sim, rig):
        _, _, _, nic, _, _ = rig
        assert nic.link_up
        nic.port.set_enabled(False)
        assert not nic.link_up
        nic.port.set_enabled(True)
        assert nic.link_up

    def test_fail_and_restore(self, sim, rig):
        _, _, _, nic, _, _ = rig
        events = []
        nic.on_link_change(events.append)
        nic.fail()
        assert not nic.link_up
        assert nic.aer.fatal == 1
        nic.restore()
        assert nic.link_up
        assert events == [False, True]
