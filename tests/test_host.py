"""Tests for hosts, memory domains, and instances."""

import pytest

from repro.errors import ReproError
from repro.host.host import Host
from repro.host.instance import Instance, ResourceSpec
from repro.mem.cxl import CXLMemoryPool
from repro.net.packet import Frame, make_ip
from repro.sim.core import Simulator


@pytest.fixture
def host(sim):
    return Host(sim, "h0", CXLMemoryPool(size=1 << 20))


class TestDomains:
    def test_shared_and_local_are_distinct(self, host):
        assert host.shared.is_shared
        assert not host.local.is_shared
        assert host.shared.pool is not host.local.pool

    def test_local_domain_uses_ddr_latency(self, host):
        t = host.local.cache.timings
        assert t.cxl_load_ns == t.ddr_load_ns

    def test_local_dma_transfer_faster(self, host):
        assert host.cxl_transfer_time(1500, local=True) < host.cxl_transfer_time(1500)

    def test_shared_domains_share_backing_store(self, sim):
        pool = CXLMemoryPool(size=1 << 20)
        h0 = Host(sim, "h0", pool)
        h1 = Host(sim, "h1", pool)
        h0.dma_write(0, b"cross-host")
        assert h1.dma_read(0, 10) == b"cross-host"

    def test_local_domains_private(self, sim):
        pool = CXLMemoryPool(size=1 << 20)
        h0 = Host(sim, "h0", pool)
        h1 = Host(sim, "h1", pool)
        h0.dma_write(0, b"private", local=True)
        assert h1.dma_read(0, 7, local=True) == bytes(7)


class TestDmaSnooping:
    def test_local_dma_write_invalidates_host_cache(self, host):
        host.dma_write(0, b"old")
        host.shared.cache.load(0, 3)
        host.dma_write(0, b"new")        # device write snoops our cache
        data, _ = host.shared.cache.load(0, 3)
        assert data == b"new"

    def test_local_dma_read_sees_dirty_cpu_data(self, host):
        host.shared.cache.store(0, b"dirty")
        assert host.dma_read(0, 5) == b"dirty"

    def test_remote_host_cache_not_snooped(self, sim):
        """Cross-host non-coherence survives through the Host layer."""
        pool = CXLMemoryPool(size=1 << 20)
        h0 = Host(sim, "h0", pool)
        h1 = Host(sim, "h1", pool)
        pool.dma_write(0, b"old")
        h1.shared.cache.load(0, 3)
        h0.dma_write(0, b"new")          # device on h0: h1 not snooped
        stale, _ = h1.shared.cache.load(0, 3)
        assert stale == b"old"

    def test_dma_accounts_traffic_to_host_link(self, host):
        host.dma_write(0, b"x" * 64, category="payload")
        stats = host.shared.pool.stats_for("h0")
        assert stats.write_bytes["payload"] == 64


class TestInstance:
    def test_requires_vnic_for_tx(self, sim, host):
        inst = Instance(sim, "i0", host, make_ip(10, 0, 0, 1))
        with pytest.raises(ReproError):
            inst.send_frame(Frame(dst_mac=0, src_mac=0))

    def test_vnic_transmit_and_src_ip_fill(self, sim, host):
        inst = Instance(sim, "i0", host, make_ip(10, 0, 0, 1))
        sent = []

        class FakeVnic:
            def transmit(self, frame):
                sent.append(frame)

        inst.attach_vnic(FakeVnic())
        inst.send_frame(Frame(dst_mac=0, src_mac=0))
        assert sent[0].src_ip == inst.ip
        assert inst.tx_frames == 1

    def test_deliver_dispatches_to_all_handlers(self, sim, host):
        inst = Instance(sim, "i0", host, make_ip(10, 0, 0, 1))
        got_a, got_b = [], []
        inst.add_handler(got_a.append)
        inst.add_handler(got_b.append)
        inst.deliver_frame(Frame(dst_mac=0, src_mac=0))
        assert len(got_a) == 1 and len(got_b) == 1
        assert inst.rx_frames == 1

    def test_resource_spec_scaling(self):
        spec = ResourceSpec(cores=2, memory_gb=8, nic_gbps=2, ssd_tb=0.5)
        doubled = spec.scaled(2.0)
        assert doubled.cores == 4
        assert doubled.nic_gbps == 4

    def test_device_attachment(self, sim, host):
        from repro.pcie.device import PCIeDevice

        dev = PCIeDevice(sim, host, "dev0")
        assert dev in host.devices
