"""Tests for the streaming fleet-health pipeline (repro.obs.fleet).

Covers the fixed-memory primitives (EWMA, P-square sketch, HealthSeries),
the live stranding gauge's exact agreement with the offline Figure 2
integral, the AlertEngine state machine (for-duration gating, hysteresis,
clears, determinism), the FleetHealth ingest path over real registry
snapshots, the HealthView query API, and the ``python -m repro top`` CLI.
"""

import json
import math

import numpy as np
import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.fleet import (
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertRule,
    Ewma,
    FleetHealth,
    HealthSeries,
    P2Quantile,
    StrandingGauge,
)
from repro.sim.core import Simulator


class TestEwma:
    def test_first_sample_initialises(self):
        ewma = Ewma(tau_s=0.1)
        assert ewma.update(0.0, 5.0) == 5.0

    def test_converges_to_constant(self):
        ewma = Ewma(tau_s=0.05)
        for i in range(200):
            value = ewma.update(i * 0.01, 3.0)
        assert value == pytest.approx(3.0)

    def test_time_constant_is_dt_aware(self):
        # One big step after tau seconds moves ~63% of the way; the same
        # total time split into many small steps lands in the same place.
        one = Ewma(tau_s=0.1)
        one.update(0.0, 0.0)
        one.update(0.1, 1.0)
        many = Ewma(tau_s=0.1)
        many.update(0.0, 0.0)
        for i in range(1, 11):
            many.update(i * 0.01, 1.0)
        assert one.value == pytest.approx(1 - math.exp(-1))
        assert many.value == pytest.approx(one.value, abs=1e-9)


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)

    def test_small_sample_exact(self):
        sketch = P2Quantile(0.5)
        for x in (9.0, 1.0, 5.0):
            sketch.observe(x)
        assert sketch.value == pytest.approx(5.0)

    def test_tracks_known_distribution(self):
        rng = np.random.default_rng(7)
        data = rng.normal(100.0, 15.0, 20_000)
        p50 = P2Quantile(0.5)
        p99 = P2Quantile(0.99)
        for x in data:
            p50.observe(float(x))
            p99.observe(float(x))
        assert p50.value == pytest.approx(np.percentile(data, 50), rel=0.02)
        assert p99.value == pytest.approx(np.percentile(data, 99), rel=0.05)

    def test_fixed_memory(self):
        sketch = P2Quantile(0.99)
        for i in range(10_000):
            sketch.observe(float(i % 97))
        assert len(sketch._heights) == 5
        assert sketch.count == 10_000


class TestHealthSeries:
    def test_levels(self):
        series = HealthSeries("device_util", "nic0")
        series.observe(0.0, 0.2)
        series.observe(0.1, 0.8)
        series.observe(0.2, 0.4)
        assert series.last == 0.4
        assert series.peak == 0.8
        assert series.count == 3
        assert 0.2 <= series.p50 <= 0.8

    def test_counter_differencing(self):
        series = HealthSeries("lease_expiry_rate", "pod")
        series.observe_counter(0.0, 0.0)
        series.observe_counter(1.0, 50.0)   # 50/s
        series.observe_counter(2.0, 150.0)  # 100/s
        assert series.last == pytest.approx(100.0)
        assert series.peak == pytest.approx(100.0)
        assert series.count == 2            # first cum sample only primes

    def test_as_dict_shape(self):
        series = HealthSeries("x", "e")
        series.observe(0.0, 1.0)
        doc = series.as_dict()
        assert set(doc) == {"last", "ewma", "p50", "p99", "peak", "samples"}


class TestStrandingGauge:
    def test_duration_weighted_average(self):
        gauge = StrandingGauge()
        # usage 10 over [0,1), 30 over [1,3), provisioned 40 throughout.
        gauge.update(0.0, 10.0, 40.0)
        gauge.update(1.0, 30.0, 40.0)
        gauge.update(3.0, 0.0, 40.0)
        avg_used = (10.0 * 1 + 30.0 * 2) / 3
        assert gauge.stranded_fraction == pytest.approx(1 - avg_used / 40.0)
        assert gauge.stranded_now == pytest.approx(1.0)

    def test_loaded_mask_gates_integral(self):
        gauge = StrandingGauge()
        gauge.update(0.0, 10.0, 40.0, loaded=False)   # ignored interval
        gauge.update(1.0, 30.0, 40.0, loaded=True)
        gauge.update(2.0, 30.0, 40.0, loaded=True)
        assert gauge.loaded_s == pytest.approx(1.0)
        assert gauge.stranded_fraction == pytest.approx(1 - 30.0 / 40.0)

    def test_devices_needed_is_ceil_of_loaded_peak(self):
        gauge = StrandingGauge()
        gauge.update(0.0, 250.0, 300.0, loaded=True)
        gauge.update(1.0, 420.0, 500.0, loaded=False)  # unloaded spike
        gauge.update(2.0, 100.0, 300.0, loaded=True)
        assert gauge.peak_used == 250.0
        assert gauge.peak_any == 420.0
        assert gauge.devices_needed(100.0) == 3
        # Exact multiples don't round up past the peak.
        exact = StrandingGauge()
        exact.update(0.0, 200.0, 200.0)
        exact.update(1.0, 0.0, 200.0)
        assert exact.devices_needed(100.0) == 2

    def test_empty_gauge_is_benign(self):
        gauge = StrandingGauge()
        assert gauge.stranded_fraction == 0.0
        assert gauge.devices_needed(100.0) == 1


class TestAlertEngine:
    RULE = AlertRule("hot", "device_util", 0.8, for_s=0.1, clear_below=0.7)

    def _tick(self, engine, t, value, entity="nic0"):
        engine.evaluate(t, {("device_util", entity): value})

    def test_for_duration_gates_short_spikes(self):
        engine = AlertEngine((self.RULE,))
        self._tick(engine, 0.00, 0.95)
        self._tick(engine, 0.05, 0.95)   # held only 50 ms
        self._tick(engine, 0.10, 0.30)   # back down before for_s
        self._tick(engine, 0.15, 0.95)   # new breach starts fresh
        self._tick(engine, 0.20, 0.95)
        assert engine.fired == 0
        assert not engine.active

    def test_fires_after_sustained_breach(self):
        engine = AlertEngine((self.RULE,))
        for i in range(4):
            self._tick(engine, i * 0.04, 0.9)
        assert engine.fired == 1
        assert [e.kind for e in engine.log] == ["fire"]
        assert ("hot", "nic0") in engine.active

    def test_hysteresis_no_flap_at_threshold(self):
        engine = AlertEngine((self.RULE,))
        for i in range(4):
            self._tick(engine, i * 0.04, 0.9)
        assert engine.fired == 1
        # Hover in the [clear_below, threshold) band: stays firing, no new
        # events in either direction.
        for i in range(4, 10):
            self._tick(engine, i * 0.04, 0.75 if i % 2 else 0.79)
        assert engine.fired == 1
        assert engine.cleared == 0
        assert ("hot", "nic0") in engine.active

    def test_clear_event_below_hysteresis(self):
        engine = AlertEngine((self.RULE,))
        for i in range(4):
            self._tick(engine, i * 0.04, 0.9)
        self._tick(engine, 0.20, 0.65)
        assert [e.kind for e in engine.log] == ["fire", "clear"]
        assert engine.cleared == 1
        assert not engine.active
        # A fresh sustained breach re-fires.
        for i in range(6, 10):
            self._tick(engine, i * 0.04, 0.9)
        assert engine.fired == 2

    def test_entities_evaluated_deterministically(self):
        def run():
            engine = AlertEngine((self.RULE,))
            for i in range(5):
                engine.evaluate(i * 0.04, {
                    ("device_util", "nic-b"): 0.9,
                    ("device_util", "nic-a"): 0.9,
                })
            return [e.as_json() for e in engine.log]

        log = run()
        assert log == run()
        assert [e[2] for e in log] == ["nic-a", "nic-b"]   # sorted entities

    def test_counters_and_tracer_instants(self):
        sim = Simulator()
        registry = MetricsRegistry()
        tracer = Tracer(sim, enabled=True)
        engine = AlertEngine((self.RULE,), tracer=tracer, registry=registry)
        for i in range(4):
            self._tick(engine, i * 0.04, 0.9)
        self._tick(engine, 0.2, 0.1)
        snap = registry.snapshot()
        assert snap.get("fleet_alert_fired", rule="hot") == 1
        assert snap.get("fleet_alert_cleared", rule="hot") == 1
        instants = tracer.instants(category="alert")
        assert [e.name for e in instants] == ["alert.fire:hot",
                                              "alert.clear:hot"]

    def test_log_is_bounded(self):
        rule = AlertRule("hot", "device_util", 0.5, for_s=0.0)
        engine = AlertEngine((rule,), max_events=4)
        for i in range(8):
            # Alternate breach/clear so every tick emits an event.
            self._tick(engine, i * 0.01, 0.9 if i % 2 == 0 else 0.1)
        assert len(engine.log) == 4
        assert engine.dropped == 4

    def test_default_ruleset_families_exist(self):
        families = {rule.family for rule in DEFAULT_ALERT_RULES}
        assert {"device_util", "link_saturation", "queue_saturation",
                "lease_expiry_rate", "slo_burn"} <= families
        for rule in DEFAULT_ALERT_RULES:
            assert rule.clear_threshold <= rule.threshold


class TestFleetIngest:
    def _fleet(self, **kw):
        defaults = dict(nic_bytes_per_sec=1e9, ssd_bytes_per_sec=2e9,
                        link_bytes_per_sec=4e9, nic_queue_depth=1024,
                        ssd_queue_depth=64)
        defaults.update(kw)
        return FleetHealth(**defaults)

    def test_device_and_link_utilization_from_deltas(self):
        reg = MetricsRegistry()
        tx = reg.counter("nic_bytes", device="nic0", host="h0", direction="tx")
        rx = reg.counter("nic_bytes", device="nic0", host="h0", direction="rx")
        ssd = reg.counter("ssd_bytes", device="ssd0", host="h1", op="read")
        link = reg.counter("cxl_link_bytes", host="h0", direction="read",
                           category="payload")
        fleet = self._fleet()
        fleet.ingest(reg.snapshot(time=0.0))
        tx.inc(5e8)           # 0.5 of 1 GB/s over 1 s
        rx.inc(1e8)           # the quieter direction loses the max()
        ssd.inc(1e9)          # 0.5 of 2 GB/s
        link.inc(2e9)         # 0.5 of 4 GB/s
        fleet.ingest(reg.snapshot(time=1.0))
        view = fleet.view()
        assert view.utilization("nic0") == pytest.approx(0.5)
        assert view.utilization("ssd0") == pytest.approx(0.5)
        assert view.saturation("h0") == pytest.approx(0.5)
        assert fleet.device_kind == {"nic0": "nic", "ssd0": "ssd"}
        assert fleet.device_host == {"nic0": "h0", "ssd0": "h1"}
        # No raw snapshot retention: only the previous snapshot is held.
        assert fleet._prev is not None
        assert fleet.ticks == 2

    def test_queue_saturation_uses_per_kind_depth(self):
        reg = MetricsRegistry()
        nic_b = reg.counter("nic_bytes", device="nic0", host="h0",
                            direction="tx")
        reg.gauge("device_queue_depth", device="nic0").set(512)
        fleet = self._fleet()
        fleet.ingest(reg.snapshot(time=0.0))
        nic_b.inc(1)          # teaches the pipeline nic0 is a NIC
        fleet.ingest(reg.snapshot(time=1.0))
        assert fleet.view().queue_saturation("nic0") == \
            pytest.approx(512 / 1024)

    def test_pool_stranding_and_failed_devices(self):
        reg = MetricsRegistry()
        alloc = {}
        for name, allocated in (("nic0", 30.0), ("nic1", 10.0)):
            reg.gauge("allocator_device_capacity", device=name,
                      kind="nic").set(100.0)
            g = reg.gauge("allocator_device_allocated", device=name,
                          kind="nic")
            g.set(allocated)
            alloc[name] = g
            reg.gauge("allocator_device_failed", device=name, kind="nic").set(0)
        fleet = self._fleet()
        fleet.ingest(reg.snapshot(time=0.0))
        fleet.ingest(reg.snapshot(time=1.0))
        view = fleet.view()
        assert view.stranding_now("nic") == pytest.approx(1 - 40.0 / 200.0)
        assert fleet.pools["nic"]["devices"] == 2
        # Fail one device: it drops out of provisioned capacity.
        reg.gauge("allocator_device_failed", device="nic1", kind="nic").set(1)
        fleet.ingest(reg.snapshot(time=2.0))
        assert fleet.pools["nic"]["failed"] == 1
        assert fleet.pools["nic"]["provisioned"] == pytest.approx(100.0)
        assert view.stranding_now("nic") == pytest.approx(1 - 30.0 / 100.0)

    def test_lease_expiry_rate_and_alerts(self):
        reg = MetricsRegistry()
        expiries = reg.counter("allocator_events", event="lease_expiry")
        rules = (AlertRule("lease_expiry_storm", "lease_expiry_rate", 10.0,
                           for_s=0.0, clear_below=1.0),)
        fleet = self._fleet(rules=rules)
        fleet.ingest(reg.snapshot(time=0.0))
        expiries.inc(50)      # 50/s over the next second
        fleet.ingest(reg.snapshot(time=1.0))
        assert fleet.gauges[("lease_expiry_rate", "pod")].last == \
            pytest.approx(50.0)
        assert fleet.alerts.fired == 1
        alerts = fleet.view().alerts()
        assert alerts[0]["rule"] == "lease_expiry_storm"

    def test_hot_devices_ranking(self):
        reg = MetricsRegistry()
        counters = {
            name: reg.counter("nic_bytes", device=name, host="h0",
                              direction="tx")
            for name in ("nic-a", "nic-b", "nic-c")
        }
        fleet = self._fleet()
        fleet.ingest(reg.snapshot(time=0.0))
        counters["nic-a"].inc(9e8)
        counters["nic-b"].inc(9.5e8)
        counters["nic-c"].inc(1e8)
        fleet.ingest(reg.snapshot(time=1.0))
        hot = fleet.view().hot_devices(threshold=0.8)
        assert [name for name, _ in hot] == ["nic-b", "nic-a"]

    def test_as_dict_document(self):
        reg = MetricsRegistry()
        tx = reg.counter("nic_bytes", device="nic0", host="h0", direction="tx")
        fleet = self._fleet()
        fleet.ingest(reg.snapshot(time=0.0))
        tx.inc(1e8)
        fleet.ingest(reg.snapshot(time=1.0))
        doc = fleet.view().as_dict()
        assert set(doc) >= {"time", "ticks", "hosts", "devices", "pools",
                            "alerts", "lease_expiry_rate", "slo_burn"}
        assert doc["devices"]["nic0"]["kind"] == "nic"
        json.dumps(doc)       # must be JSON-serialisable as-is


class TestCrossChecks:
    """Satellite: live stranding gauge vs the offline fig2/table2 pipeline."""

    def test_live_stranding_matches_fig2_offline(self):
        from repro.experiments import fig2

        results = fig2.run(n_instances=800, n_hosts=16, pod_sizes=(1,),
                           crosscheck=True)
        for resource in ("nic", "ssd"):
            check = results["crosscheck"][resource]
            assert abs(check["live_devices"] - check["offline_devices"]) <= 1
            assert check["live_stranded"] == pytest.approx(
                check["offline_stranded"], abs=1e-6)

    def test_sketch_p99_matches_table2_exact(self):
        from repro.experiments import table2

        racks = table2.run(crosscheck=True)
        for rack in racks.values():
            check = rack["crosscheck"]
            for sketch, exact, (lo, hi) in zip(check["sketch_p99"],
                                               check["exact_p99"],
                                               check["exact_band"]):
                # These series are 60-98% exact zeros; five markers cannot
                # pin p99 tightly there, so the contract is neighbourhood
                # membership between the exact p98 and p99.9.  (The tight
                # continuous-distribution contract lives in TestP2Quantile.)
                assert lo - 1e-6 <= sketch <= hi + 1e-6
                assert sketch >= exact - 0.05


class TestTopCli:
    def test_pod_integration_reports_utilization_and_stranding(self):
        from repro.obs.cli import top

        data = top(duration_s=0.05, once=True)
        doc = data["doc"]
        assert doc["ticks"] >= 4
        assert "nic-h0" in doc["devices"]
        nic = doc["devices"]["nic-h0"]
        assert nic["util"]["samples"] > 0
        assert nic["util"]["last"] >= 0.0
        assert 0.0 <= doc["pools"]["nic"]["stranded"] <= 1.0
        # Echo load is allocated on the pooled NIC, so some capacity is
        # genuinely in use: stranding must be strictly below 100%.
        assert doc["pools"]["nic"]["stranded"] < 1.0
        assert data["pod"].fleet is data["fleet"]

    def test_doc_is_seed_deterministic(self):
        from repro.obs.cli import top

        docs = [json.dumps(top(duration_s=0.04, once=True)["doc"],
                           sort_keys=True) for _ in range(2)]
        assert docs[0] == docs[1]

    def test_multi_host_pod(self):
        from repro.obs.cli import top

        data = top(duration_s=0.03, once=True, n_hosts=3, rate_pps=5_000.0)
        doc = data["doc"]
        assert len(doc["hosts"]) == 3
        assert len(doc["devices"]) == 3

    def test_main_top_json(self, capsys):
        from repro.obs.cli import main_top

        assert main_top(["--once", "--json", "--duration", "0.03"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "devices" in doc and "alerts" in doc

    def test_render_dashboard_smoke(self):
        from repro.obs.cli import render_bar, render_dashboard, top

        assert render_bar(0.5, width=10).count("#") == 5
        assert render_bar(2.0, width=10) == "#" * 10
        text = render_dashboard(top(duration_s=0.03, once=True)["doc"])
        assert "devices" in text and "pools" in text

    def test_enable_fleet_telemetry_idempotent(self):
        from repro.experiments.common import build_echo_pod

        pod, _, _, _ = build_echo_pod("oasis", remote=True)
        fleet = pod.enable_fleet_telemetry(period_s=0.01)
        assert pod.enable_fleet_telemetry() is fleet
        assert pod.scraper.running
