"""Deterministic fault injection: plans, replay identity, recovery paths.

Covers the repro.faults subsystem end to end: FaultPlan JSON round-trip and
seeded window resolution, replay-identical fault sequences and invariant
verdicts from the same root seed, the storage frontend's retry/timeout path,
the net backend's DMA-abort repost path (asserted through the observability
counters), and flow-latency conservation under injected faults.
"""

import json

import pytest

from repro.config import OasisConfig
from repro.core.pod import CXLPod
from repro.errors import ConfigError
from repro.faults import (FAULT_KINDS, FaultPlan, FaultSpec, InvariantChecker)
from repro.faults.chaos import DEFAULT_PLAN, run_chaos
from repro.net.packet import make_ip
from repro.sim.rng import RngFactory
from repro.workloads.blockio import BlockWorkload
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


def build_pod(seed=11):
    """NIC+SSD on h0, instance on h1, backup NIC on h2 (remote datapath)."""
    pod = CXLPod(config=OasisConfig().with_(seed=seed), mode="oasis")
    h0, h1, h2 = pod.add_host(), pod.add_host(), pod.add_host()
    nic0 = pod.add_nic(h0)
    pod.add_nic(h2, is_backup=True)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=SERVER_IP)
    EchoServer(pod.sim, inst)
    device = pod.add_block_device(inst, ssd)
    client = pod.add_external_client(ip=CLIENT_IP)
    return pod, inst, nic0, ssd, device, client


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.from_json(json.dumps(DEFAULT_PLAN))
        again = FaultPlan.from_json(plan.to_json())
        assert again.name == plan.name
        assert [s.to_dict() for s in again.faults] == \
               [s.to_dict() for s in plan.faults]

    def test_bare_list_accepted(self):
        plan = FaultPlan.from_json('[{"kind": "switch.drop", "at": 0.1}]')
        assert len(plan) == 1 and plan.faults[0].kind == "switch.drop"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="gpu.meltdown", at=0.1).validate()

    def test_at_and_window_mutually_exclusive(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="switch.drop", at=0.1, window=(0.0, 1.0)).validate()
        with pytest.raises(ConfigError):
            FaultSpec(kind="switch.drop").validate()

    def test_duration_rejected_for_one_shot_kinds(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="ssd.media_error", at=0.1, duration=0.5).validate()

    def test_every_advertised_kind_validates(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, at=0.1).validate()

    def test_window_resolution_is_seed_deterministic(self):
        plan = FaultPlan([
            FaultSpec(kind="switch.drop", window=(0.0, 1.0)),
            FaultSpec(kind="ssd.media_error", window=(0.0, 1.0)),
        ], name="p")
        t1 = [rf.time for rf in sorted(plan.resolve(RngFactory(3)),
                                       key=lambda rf: rf.index)]
        t2 = [rf.time for rf in sorted(plan.resolve(RngFactory(3)),
                                       key=lambda rf: rf.index)]
        t3 = [rf.time for rf in sorted(plan.resolve(RngFactory(4)),
                                       key=lambda rf: rf.index)]
        assert t1 == t2
        assert t1 != t3
        # Each spec has its own substream: the draws differ from each other.
        assert t1[0] != t1[1]
        for t in t1:
            assert 0.0 <= t < 1.0

    def test_resolved_order_is_time_sorted(self):
        plan = FaultPlan([
            FaultSpec(kind="switch.drop", at=0.5),
            FaultSpec(kind="switch.duplicate", at=0.1),
        ])
        resolved = plan.resolve(RngFactory(1))
        assert [rf.time for rf in resolved] == [0.1, 0.5]


class TestReplayIdentity:
    def test_same_seed_reproduces_fault_sequence_and_verdict(self):
        results = [run_chaos(seed=13, duration_s=0.25, settle_s=0.2,
                             verbose=False) for _ in range(2)]
        a, b = results
        assert a["events"] == b["events"] and a["events"]
        assert a["verdict"].checks == b["verdict"].checks
        assert ([repr(v) for v in a["verdict"].violations]
                == [repr(v) for v in b["verdict"].violations])
        assert a["echo"] == b["echo"]
        assert a["blockio"] == b["blockio"]
        assert a["recovery"] == b["recovery"]

    def test_different_seed_changes_fault_times(self):
        a = run_chaos(seed=13, duration_s=0.25, settle_s=0.2, verbose=False)
        b = run_chaos(seed=14, duration_s=0.25, settle_s=0.2, verbose=False)
        assert a["events"] != b["events"]

    def test_default_chaos_run_holds_invariants(self):
        result = run_chaos(seed=7, duration_s=0.3, verbose=False)
        assert result["ok"], result["verdict"].render()
        # The run must actually have exercised faults and recoveries.
        assert result["injector"].injected
        recovery = result["recovery"]
        assert sum(v for k, v in recovery.items()
                   if k.endswith((".tx_retries", ".retries"))) > 0
        assert recovery["allocator.failovers"] >= 1


class TestStorageRetryPath:
    def test_media_errors_are_retried_not_surfaced(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        statuses = []
        pod.run(0.01)
        ssd.inject_media_error(2)
        for i in range(4):
            device.write(16 + i, b"\xbb" * device.block_size,
                         lambda status: statuses.append(status))
        pod.run(0.2)
        frontend = pod.storage_frontends[inst.host.name]
        assert statuses == [0, 0, 0, 0]
        assert ssd.media_errors == 2
        assert frontend.retries >= 2
        assert frontend.giveups == 0
        assert frontend.inflight == 0
        pod.stop()

    def test_retry_exhaustion_surfaces_error(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        statuses = []
        pod.run(0.01)
        max_retries = pod.config.retry.storage_max_retries
        ssd.inject_media_error(max_retries + 1)   # outlives every attempt
        device.read(0, 1, lambda status, data: statuses.append(status))
        pod.run(0.3)
        frontend = pod.storage_frontends[inst.host.name]
        assert statuses and statuses[0] != 0
        assert frontend.giveups == 1
        assert frontend.inflight == 0
        pod.stop()

    def test_ssd_outage_times_out_and_gives_up(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        statuses = []
        pod.run(0.01)
        plan = FaultPlan([FaultSpec(kind="ssd.fail", target=ssd.name,
                                    at=pod.sim.now + 0.001)])
        pod.inject_faults(plan)
        pod.run(0.002)
        device.read(0, 1, lambda status, data: statuses.append(status))
        # Enough time for every per-attempt deadline to expire.
        retry = pod.config.retry
        budget = ((retry.storage_max_retries + 1)
                  * retry.storage_timeout_ms * 1e-3 + 0.1)
        pod.run(budget)
        frontend = pod.storage_frontends[inst.host.name]
        assert statuses and statuses[0] != 0
        assert frontend.inflight == 0
        assert frontend.giveups >= 1
        pod.stop()

    def test_writeback_loss_heals_through_storage_retry(self):
        # Drop the writeback of a write buffer: the SSD stores stale bytes,
        # but the echoed write itself still completes and the pool accounting
        # conserves -- the damage is confined to the armed line count.
        pod, inst, nic0, ssd, device, client = build_pod()
        pod.run(0.01)
        cache = inst.host.shared.cache
        lost = []
        cache.inject_writeback_fault(count=1, mode="drop",
                                     on_fault=lambda i, c, m: lost.append(i))
        statuses = []
        device.write(64, b"\xab" * device.block_size,
                     lambda status: statuses.append(status))
        pod.run(0.1)
        assert statuses == [0]
        assert lost and cache.stats.writebacks_lost == 1
        pod.stop()


class TestNetRetryPath:
    def test_dma_abort_retries_via_obs_counters(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        echo = EchoClient(pod.sim, client, SERVER_IP, rate_pps=2000.0,
                          metrics=pod.metrics)
        echo.start(0.1)
        pod.run(0.05)
        nic0.inject_dma_abort(2)
        pod.run(0.15)
        pod.stop()
        backend = pod.backends[nic0.name]
        # The retry path demonstrably fired, visible through the registry.
        assert pod.metrics.value("driver_ops", driver=backend.name,
                                 op="tx_retries") >= 2
        assert pod.metrics.value("nic_dma_aborts", device=nic0.name,
                                 host="h0") == 2
        assert backend.tx_giveups == 0
        # ... and the aborted packets were retransparently delivered.
        assert echo.stats.received == echo.stats.sent

    def test_tx_completions_conserved_under_aborts(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        checker = InvariantChecker(pod).install()
        echo = EchoClient(pod.sim, client, SERVER_IP, rate_pps=2000.0)
        echo.start(0.1)
        pod.run(0.05)
        nic0.inject_dma_abort(3)
        pod.run(0.2)
        pod.stop()
        verdict = checker.finish()
        assert verdict.ok, verdict.render()


class TestFlowConservationUnderFaults:
    def test_retried_flows_still_telescope(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        pod.enable_flow_tracing()
        workload = BlockWorkload(pod.sim, device, rate_iops=2000.0,
                                 rng=pod.rng.get("blockio"), flows=pod.flows)
        workload.start(0.1)
        pod.run(0.02)
        ssd.inject_media_error(3)
        pod.run(0.25)
        pod.stop()
        frontend = pod.storage_frontends[inst.host.name]
        assert frontend.retries >= 3
        assert workload.stats.errors == 0
        assert workload.stats.completed == workload.stats.submitted
        # Every completed flow record telescopes, including the retried ones.
        assert pod.flows.check_conservation() == []
        retried = [r for r in pod.flows.records
                   if any(seg.name == "sfe.retry" for seg in r.segments)]
        assert retried, "no flow recorded its retry stage"


class TestInjectorLinkFaults:
    def test_throttle_slows_and_recovers(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        base = pod.pool.transfer_time_s(4096, host="h0")
        plan = FaultPlan([FaultSpec(kind="cxl.throttle", at=0.01,
                                    duration=0.02,
                                    params={"factor": 10.0})])
        injector = pod.inject_faults(plan)
        pod.run(0.015)
        assert pod.pool.transfer_time_s(4096, host="h0") == \
            pytest.approx(10.0 * base)
        pod.run(0.03)
        assert pod.pool.transfer_time_s(4096, host="h0") == pytest.approx(base)
        assert [e.phase for e in injector.events] == ["inject", "recover"]
        pod.stop()

    def test_host_scoped_spike_only_hits_that_host(self):
        pod, inst, nic0, ssd, device, client = build_pod()
        plan = FaultPlan([FaultSpec(kind="cxl.latency_spike", target="h0",
                                    at=0.01, duration=0.05,
                                    params={"extra_us": 5.0})])
        pod.inject_faults(plan)
        pod.run(0.02)
        base = 4096 / pod.config.cxl.link_bytes_per_sec
        assert pod.pool.transfer_time_s(4096, host="h0") == \
            pytest.approx(base + 5e-6)
        assert pod.pool.transfer_time_s(4096, host="h1") == pytest.approx(base)
        pod.stop()
