"""Safety properties of the channel protocol and simulation determinism."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.designs import make_receiver
from repro.channel.protocol import ChannelSender
from repro.channel.ring import RingLayout
from repro.core.pod import CXLPod
from repro.mem.cache import HostCache
from repro.mem.cxl import CXLMemoryPool
from repro.mem.layout import Region
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer


class TestChannelSafety:
    """No duplication, no corruption, no reordering -- under any
    interleaving of sends, polls, flushes and spurious invalidations."""

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("send"), st.integers(1, 4)),
                st.tuples(st.just("poll"), st.integers(1, 8)),
                st.tuples(st.just("flush"), st.just(0)),
                st.tuples(st.just("spurious_invalidate"), st.integers(0, 7)),
            ),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exactly_once_in_order_delivery(self, ops):
        pool = CXLMemoryPool(size=1 << 20)
        layout = RingLayout(Region(0, RingLayout.required_bytes(32, 16)),
                            32, 16)
        sender = ChannelSender(layout, HostCache(pool, "s"))
        receiver = make_receiver("invalidate-prefetched", layout,
                                 HostCache(pool, "r"), counter_batch=4)
        sent, received = [], []
        for op, arg in ops:
            if op == "send":
                for _ in range(arg):
                    seq = len(sent)
                    payload = bytes([1]) + seq.to_bytes(8, "little") + bytes(7)
                    ok, _ = sender.try_send(payload)
                    if ok:
                        sent.append(payload)
            elif op == "poll":
                for _ in range(arg):
                    payload, _ = receiver.poll()
                    if payload is not None:
                        received.append(payload)
            elif op == "flush":
                sender.flush()
            elif op == "spurious_invalidate":
                # A receiver may invalidate any ring line at any time without
                # hurting safety (only performance).
                receiver.cache.clflush(layout.region.base + arg * 64)
        sender.flush()
        for _ in range(200):
            payload, _ = receiver.poll()
            if payload is not None:
                received.append(payload)
            elif len(received) == len(sent):
                break
        assert received == sent

    def test_spurious_sender_writebacks_harmless(self):
        """Extra CLWBs of ring lines never corrupt delivery."""
        pool = CXLMemoryPool(size=1 << 20)
        layout = RingLayout(Region(0, RingLayout.required_bytes(32, 16)),
                            32, 16)
        sender = ChannelSender(layout, HostCache(pool, "s"))
        receiver = make_receiver("invalidate-prefetched", layout,
                                 HostCache(pool, "r"), counter_batch=4)
        got = []
        for i in range(64):
            payload = bytes([1]) + i.to_bytes(8, "little") + bytes(7)
            sender.send(payload)
            sender.cache.clwb(layout.slot_addr(i))      # spurious
            for _ in range(6):
                item, _ = receiver.poll()
                if item is not None:
                    got.append(item)
                    break
        assert len(got) == 64


class TestDeterminism:
    def _run_once(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=make_ip(10, 0, 0, 1), nic=nic)
        EchoServer(pod.sim, inst)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        ec = EchoClient(pod.sim, client, inst.ip, rate_pps=20_000,
                        rng=np.random.default_rng(5), poisson=True)
        ec.start(0.02)
        pod.run(0.05)
        pod.stop()
        return (ec.stats.received, tuple(ec.stats.latencies_us[:50]),
                pod.sim.processed_events)

    def test_identical_runs_bit_identical(self):
        """The whole stack is deterministic given seeds: same packet counts,
        same latencies, same event count."""
        assert self._run_once() == self._run_once()


class TestEventBudget:
    def test_events_per_packet_bounded(self):
        """Performance regression guard: the DES must stay O(messages) --
        roughly a fixed event budget per echoed packet, with no idle spin."""
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=make_ip(10, 0, 0, 1), nic=nic)
        EchoServer(pod.sim, inst)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        ec = EchoClient(pod.sim, client, inst.ip, rate_pps=10_000)
        ec.start(0.1)
        pod.run(0.15)
        pod.stop()
        events_per_packet = pod.sim.processed_events / ec.stats.received
        assert events_per_packet < 40

    def test_idle_pod_consumes_almost_no_events(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        pod.add_nic(h0)
        pod.add_instance(h1, ip=make_ip(10, 0, 0, 1))
        pod.run(1.0)   # one simulated second, zero traffic
        pod.stop()
        # Only periodic control-plane work (link monitor + telemetry).
        assert pod.sim.processed_events < 500
