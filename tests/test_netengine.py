"""Tests for the network engine: message codec and end-to-end TX/RX flows."""

import pytest

from repro.config import NICConfig, OasisConfig
from repro.core.netengine.messages import (
    NET_MESSAGE_SIZE,
    OP_RX,
    OP_RX_COMP,
    OP_TX,
    OP_TX_COMP,
    NetMessage,
)
from repro.core.pod import CXLPod
from repro.errors import ChannelError
from repro.net.packet import Frame, make_ip
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


class TestMessageCodec:
    def test_roundtrip(self):
        message = NetMessage(OP_TX, 1500, SERVER_IP, 0xDEADBEEF00)
        out = NetMessage.unpack(message.pack())
        assert out == message

    def test_exactly_16_bytes(self):
        assert NET_MESSAGE_SIZE == 16
        assert len(NetMessage(OP_RX, 64, 1, 2).pack()) == 16

    def test_opcode_leaves_epoch_bit_clear(self):
        for op in (OP_TX, OP_TX_COMP, OP_RX, OP_RX_COMP):
            assert op < 0x80

    def test_invalid_opcode_rejected(self):
        with pytest.raises(ChannelError):
            NetMessage(0x7F, 0, 0, 0).pack()
        with pytest.raises(ChannelError):
            NetMessage.unpack(b"\x7f" + bytes(15))

    def test_size_field_bounds(self):
        with pytest.raises(ChannelError):
            NetMessage(OP_TX, 70_000, 0, 0).pack()


def build_pod(mode="oasis", remote=True):
    pod = CXLPod(mode=mode)
    h0 = pod.add_host()
    h1 = pod.add_host() if remote else h0
    nic = pod.add_nic(h0)
    inst = pod.add_instance(h1 if remote else h0, ip=SERVER_IP, nic=nic)
    client = pod.add_external_client(ip=CLIENT_IP)
    return pod, inst, client, nic


class TestEndToEnd:
    def test_oasis_echo_roundtrip(self):
        pod, inst, client, nic = build_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, packet_size=128,
                        rate_pps=10_000)
        ec.start(0.01)
        pod.run(0.03)
        assert ec.stats.received == ec.stats.sent > 0

    def test_payload_bytes_survive_the_noncoherent_path(self):
        """End-to-end bit-exactness through CXL buffers, DMA and copies."""
        pod, inst, client, nic = build_pod()
        received = []
        inst.add_handler(lambda f: received.append(f.payload))
        pattern = bytes(range(256)) * 4
        from repro.net.transport import UdpSocket

        sock = UdpSocket(pod.sim, client, port=555)
        sock.sendto(pattern, SERVER_IP, 7, wire_size=1500)
        pod.run(0.01)
        assert received == [pattern]

    def test_backend_never_inspects_tagged_rx(self):
        pod, inst, client, nic = build_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(0.01)
        pod.run(0.03)
        backend = pod.backends[nic.name]
        assert backend.rx_fallback_inspections == 0
        assert backend.rx_forwarded > 0

    def test_fallback_inspection_without_flow_tagging(self):
        config = OasisConfig(nic=NICConfig(supports_flow_tagging=False))
        pod = CXLPod(config=config)
        h0, h1 = pod.add_host(), pod.add_host()
        nic = pod.add_nic(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic)
        client = pod.add_external_client(ip=CLIENT_IP)
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=5000)
        ec.start(0.01)
        pod.run(0.03)
        backend = pod.backends[nic.name]
        assert ec.stats.received == ec.stats.sent > 0
        assert backend.rx_fallback_inspections > 0

    def test_unknown_destination_dropped(self):
        pod, inst, client, nic = build_pod()
        from repro.net.transport import UdpSocket

        sock = UdpSocket(pod.sim, client, port=555)
        # The ARP registry has no mapping: the frame floods and reaches the
        # NIC, which has no flow tag or registration for this IP.
        sock.sendto(b"lost", make_ip(10, 0, 0, 99), 7)
        pod.run(0.01)
        backend = pod.backends[nic.name]
        assert backend.rx_dropped_unknown >= 0   # never crashes

    def test_tx_buffers_freed_after_completion(self):
        pod, inst, client, nic = build_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=10_000)
        ec.start(0.02)
        pod.run(0.06)
        frontend = pod.frontends[inst.host.name]
        record = frontend.record_of(SERVER_IP)
        assert frontend._tx_pending == {}
        assert record.tx_area.allocated_bytes == 0

    def test_rx_buffers_recycled(self):
        pod, inst, client, nic = build_pod()
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=20_000)
        ec.start(0.02)
        pod.run(0.06)
        backend = pod.backends[nic.name]
        # All buffers back in the pool or posted in the RX ring.
        assert backend.rx_pool.outstanding == len(backend.nic.rx_ring)

    def test_local_mode_echo(self):
        pod, inst, client, nic = build_pod(mode="local", remote=False)
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=10_000)
        ec.start(0.01)
        pod.run(0.03)
        assert ec.stats.received == ec.stats.sent > 0
        # Baseline never touches the shared CXL pool for payload.
        assert pod.cxl_traffic_by_category().get("payload", 0) == 0

    def test_local_cxl_buffers_mode_uses_pool(self):
        pod, inst, client, nic = build_pod(mode="local-cxl-buffers",
                                           remote=False)
        EchoServer(pod.sim, inst)
        ec = EchoClient(pod.sim, client, SERVER_IP, rate_pps=10_000)
        ec.start(0.01)
        pod.run(0.03)
        assert ec.stats.received > 0
        assert pod.cxl_traffic_by_category().get("payload", 0) > 0

    def test_oasis_latency_overhead_in_band(self):
        """The headline §5.1 claim: +4-7 us over the local baseline."""
        pod_b, inst_b, client_b, _ = build_pod(mode="local", remote=False)
        EchoServer(pod_b.sim, inst_b)
        ec_b = EchoClient(pod_b.sim, client_b, SERVER_IP, rate_pps=20_000)
        ec_b.start(0.03)
        pod_b.run(0.06)

        pod_o, inst_o, client_o, _ = build_pod(mode="oasis", remote=True)
        EchoServer(pod_o.sim, inst_o)
        ec_o = EchoClient(pod_o.sim, client_o, SERVER_IP, rate_pps=20_000)
        ec_o.start(0.03)
        pod_o.run(0.06)

        overhead = ec_o.stats.percentile_us(50) - ec_b.stats.percentile_us(50)
        assert 2.0 <= overhead <= 8.0
