"""Tests for configuration validation and Table 1 constants."""

from dataclasses import replace

import pytest

from repro.config import (
    CACHE_LINE,
    CacheTimings,
    CXLConfig,
    DatapathConfig,
    FailoverConfig,
    HostConfig,
    NICConfig,
    OasisConfig,
    SSDConfig,
    TransportConfig,
)
from repro.errors import ConfigError


class TestDefaults:
    def test_default_config_validates(self):
        OasisConfig().validate()

    def test_cache_line_is_64(self):
        assert CACHE_LINE == 64

    def test_cxl_latency_ratio_matches_paper(self):
        """§2.3: CXL load-to-use is ~2.2x DDR on 5th-gen EPYC."""
        t = CacheTimings()
        assert 2.0 <= t.cxl_load_ns / t.ddr_load_ns <= 2.5

    def test_cxl_x8_link_bandwidth(self):
        """§2.3: x8 CXL 2.0 lanes give 32 GB/s/direction (before efficiency)."""
        cxl = CXLConfig()
        raw = cxl.lanes_per_host * cxl.lane_gbps
        assert raw == pytest.approx(32.0)
        assert cxl.link_bytes_per_sec == pytest.approx(32e9 * 0.92)

    def test_nic_matches_table1(self):
        nic = NICConfig()
        assert nic.bandwidth_gbps == 100.0
        assert nic.bytes_per_sec == pytest.approx(12.5e9)

    def test_ssd_matches_table1(self):
        ssd = SSDConfig()
        assert ssd.bytes_per_sec == pytest.approx(5e9)
        assert 50 <= ssd.read_latency_us <= 150

    def test_with_replaces_fields(self):
        config = OasisConfig().with_(seed=99)
        assert config.seed == 99
        assert config.nic.bandwidth_gbps == 100.0

    def test_channel_defaults_match_paper(self):
        """§3.2.2: 8192 slots, 16 B / 64 B messages, depth-16 prefetch."""
        dp = DatapathConfig()
        assert dp.channel_slots == 8192
        assert dp.net_message_bytes == 16
        assert dp.storage_message_bytes == 64
        assert dp.prefetch_depth == 16
        assert dp.counter_batch_divisor == 2


class TestValidation:
    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigError):
            replace(CacheTimings(), clwb_ns=-1.0).validate()

    def test_cxl_slower_than_ddr_required(self):
        with pytest.raises(ConfigError):
            replace(CacheTimings(), cxl_load_ns=10.0, ddr_load_ns=90.0).validate()

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigError):
            replace(CXLConfig(), lanes_per_host=0).validate()

    def test_bad_link_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            replace(CXLConfig(), link_efficiency=1.5).validate()

    def test_zero_nic_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            replace(NICConfig(), bandwidth_gbps=0).validate()

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ConfigError):
            replace(NICConfig(), tx_queue_depth=0).validate()

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigError):
            replace(SSDConfig(), block_size=1000).validate()

    def test_non_power_of_two_slots_rejected(self):
        with pytest.raises(ConfigError):
            replace(DatapathConfig(), channel_slots=1000).validate()

    def test_bad_message_size_rejected(self):
        with pytest.raises(ConfigError):
            replace(DatapathConfig(), net_message_bytes=32).validate()

    def test_storage_message_must_be_64(self):
        with pytest.raises(ConfigError):
            replace(DatapathConfig(), storage_message_bytes=16).validate()

    def test_lease_ttl_must_exceed_telemetry(self):
        with pytest.raises(ConfigError):
            replace(FailoverConfig(), lease_ttl_ms=50.0,
                    telemetry_interval_ms=100.0).validate()

    def test_rto_bounds(self):
        with pytest.raises(ConfigError):
            replace(TransportConfig(), min_rto_ms=100.0, max_rto_ms=50.0).validate()

    def test_rto_backoff_at_least_one(self):
        with pytest.raises(ConfigError):
            replace(TransportConfig(), rto_backoff=0.5).validate()

    def test_host_capacities_positive(self):
        with pytest.raises(ConfigError):
            replace(HostConfig(), cores=0).validate()

    def test_validate_returns_self(self):
        config = OasisConfig()
        assert config.validate() is config
