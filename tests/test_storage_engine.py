"""Tests for the storage engine (§3.4): block I/O over pooled SSDs."""

import pytest

from repro.core.pod import CXLPod
from repro.core.storage.messages import (
    SOP_COMPLETION,
    SOP_READ,
    SOP_WRITE,
    STORAGE_MESSAGE_SIZE,
    StorageMessage,
)
from repro.errors import ChannelError
from repro.net.packet import make_ip

IP = make_ip(10, 0, 0, 1)
BS = 4096


class TestStorageMessage:
    def test_roundtrip(self):
        message = StorageMessage(SOP_READ, cid=7, slba=100, nlb=8,
                                 buffer_addr=0xABCDE, instance_ip=IP)
        out = StorageMessage.unpack(message.pack())
        assert out == message

    def test_exactly_64_bytes(self):
        assert STORAGE_MESSAGE_SIZE == 64
        assert len(StorageMessage(SOP_WRITE, 1, 2, 3, 4, 5).pack()) == 64

    def test_opcodes_leave_epoch_bit_clear(self):
        for op in (SOP_READ, SOP_WRITE, SOP_COMPLETION):
            assert op < 0x80

    def test_invalid_opcode_rejected(self):
        with pytest.raises(ChannelError):
            StorageMessage(0x7E, 1, 2, 3, 4, 5).pack()

    def test_status_roundtrip(self):
        message = StorageMessage(SOP_COMPLETION, 1, 0, 0, 0, 0, status=6)
        assert StorageMessage.unpack(message.pack()).status == 6


def build_storage_pod(remote=True, mode="oasis"):
    pod = CXLPod(mode=mode)
    h0 = pod.add_host()
    h1 = pod.add_host() if remote else h0
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1 if remote else h0, ip=IP)
    device = pod.add_block_device(inst, ssd)
    return pod, ssd, device


class TestBlockIO:
    def test_write_read_roundtrip_remote(self):
        pod, ssd, device = build_storage_pod(remote=True)
        data = bytes(range(256)) * 16
        results = {}
        device.write(10, data, lambda s: results.setdefault("w", s))
        pod.run(0.01)
        device.read(10, 1, lambda s, d: results.setdefault("r", (s, d)))
        pod.run(0.01)
        assert results["w"] == 0
        assert results["r"] == (0, data)

    def test_unwritten_reads_zero(self):
        pod, ssd, device = build_storage_pod()
        results = {}
        device.read(500, 1, lambda s, d: results.setdefault("r", (s, d)))
        pod.run(0.01)
        assert results["r"] == (0, bytes(BS))

    def test_multi_block_write(self):
        pod, ssd, device = build_storage_pod()
        data = bytes([9]) * (4 * BS)
        results = {}
        device.write(0, data, lambda s: results.setdefault("w", s))
        pod.run(0.01)
        device.read(2, 2, lambda s, d: results.setdefault("r", (s, d)))
        pod.run(0.01)
        assert results["r"] == (0, bytes([9]) * (2 * BS))

    def test_unaligned_write_rejected(self):
        pod, ssd, device = build_storage_pod()
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            device.write(0, b"x" * 100, lambda s: None)

    def test_concurrent_requests_all_complete(self):
        pod, ssd, device = build_storage_pod()
        statuses = []
        for i in range(32):
            device.write(i, bytes([i]) * BS, statuses.append)
        pod.run(0.05)
        assert statuses == [0] * 32

    def test_buffers_released_after_completion(self):
        pod, ssd, device = build_storage_pod()
        frontend = pod.storage_frontends[device.instance.host.name]
        for i in range(8):
            device.write(i, b"z" * BS, lambda s: None)
        pod.run(0.05)
        assert frontend.inflight == 0
        assert frontend._space.allocated_bytes == 0

    def test_local_mode_storage(self):
        pod, ssd, device = build_storage_pod(remote=False, mode="local")
        results = {}
        device.write(1, b"q" * BS, lambda s: results.setdefault("w", s))
        pod.run(0.01)
        device.read(1, 1, lambda s, d: results.setdefault("r", (s, d[:4])))
        pod.run(0.01)
        assert results["w"] == 0
        assert results["r"] == (0, b"qqqq")

    def test_read_latency_dominated_by_media(self):
        pod, ssd, device = build_storage_pod()
        done = {}
        start = pod.sim.now
        device.read(0, 1, lambda s, d: done.setdefault("t", pod.sim.now))
        pod.run(0.01)
        latency_us = (done["t"] - start) / 1e-6
        # Media is 90 us; the Oasis datapath adds single-digit us.
        assert 90 <= latency_us <= 120


class TestStorageFailure:
    def test_failed_drive_surfaces_io_error(self):
        pod, ssd, device = build_storage_pod()
        ssd.fail()
        results = {}
        device.write(0, b"x" * BS, lambda s: results.setdefault("w", s))
        pod.run(0.01)
        assert results["w"] != 0

    def test_inflight_requests_error_on_failure(self):
        pod, ssd, device = build_storage_pod()
        statuses = []
        for i in range(4):
            device.read(i, 1, lambda s, d: statuses.append(s))
        pod.run(0.00002)   # requests in flight
        ssd.fail()
        pod.run(0.05)
        assert len(statuses) == 4
        assert any(s != 0 for s in statuses)

    def test_errors_still_release_buffers(self):
        pod, ssd, device = build_storage_pod()
        ssd.fail()
        frontend = pod.storage_frontends[device.instance.host.name]
        for i in range(4):
            device.write(i, b"x" * BS, lambda s: None)
        pod.run(0.05)
        assert frontend.inflight == 0
        assert frontend._space.allocated_bytes == 0


class TestStaleBufferRegression:
    def test_read_after_write_buffer_reuse_is_fresh(self):
        """Regression: a recycled *write* buffer left clean stale lines in
        the frontend's cache; a later read reusing that region must not
        return the old write's bytes (the §3.2 failure class)."""
        pod, ssd, device = build_storage_pod(remote=True)
        first = b"A" * BS
        second = b"B" * BS
        done = {}
        device.write(0, first, lambda s: done.setdefault("w0", s))
        pod.run(0.001)
        device.write(1, second, lambda s: done.setdefault("w1", s))
        pod.run(0.001)
        # Reads reuse the freed write-buffer regions (first-fit allocator).
        results = []
        device.read(1, 1, lambda s, d: results.append(d))
        pod.run(0.001)
        device.read(0, 1, lambda s, d: results.append(d))
        pod.run(0.001)
        assert results[0] == second
        assert results[1] == first


class TestStoragePlacement:
    def test_allocator_prefers_local_ssd(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        pod.add_nic(h0)
        ssd0 = pod.add_ssd(h0)
        ssd1 = pod.add_ssd(h1)
        inst = pod.add_instance(h1, ip=IP)
        device = pod.add_block_device(inst)     # allocator places
        assert device.backend_name == ssd1.name
        assert pod.allocator.storage_assignments[IP] == ssd1.name

    def test_allocator_falls_back_to_remote(self):
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        pod.add_nic(h0)
        ssd0 = pod.add_ssd(h0)                  # only h0 has a drive
        inst = pod.add_instance(h1, ip=IP)
        device = pod.add_block_device(inst)
        assert device.backend_name == ssd0.name
        # A storage lease was granted.
        assert pod.allocator.leases.get(IP, ssd0.name) is not None

    def test_storage_telemetry_flows_to_allocator(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h0, ip=IP)
        device = pod.add_block_device(inst)
        for i in range(16):
            device.write(i, b"x" * BS, lambda s: None)
        pod.run(0.35)   # a few 100 ms telemetry ticks
        record = pod.allocator.telemetry_store.latest(ssd.name)
        assert record is not None
        assert pod.allocator.storage_devices[ssd.name].measured_load >= 0

    def test_release_storage_returns_capacity(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h0, ip=IP)
        pod.add_block_device(inst)
        before = pod.allocator.storage_devices[ssd.name].allocated
        pod.allocator.release_storage(IP, inst.spec.ssd_tb)
        after = pod.allocator.storage_devices[ssd.name].allocated
        assert after < before


class TestBlockWorkload:
    def test_workload_measures_latency(self):
        from repro.workloads.blockio import BlockWorkload
        import numpy as np

        pod, ssd, device = build_storage_pod(remote=True)
        workload = BlockWorkload(pod.sim, device, rate_iops=2000,
                                 rng=np.random.default_rng(1))
        workload.start(0.05)
        pod.run(0.1)
        stats = workload.stats.summary()
        assert stats["completed"] > 50
        assert stats["errors"] == 0
        assert stats["read"]["p50"] > 90          # media floor
        assert stats["write"]["p50"] < stats["read"]["p50"]
        assert workload.inflight == 0

    def test_queue_depth_cap(self):
        from repro.workloads.blockio import BlockWorkload
        import numpy as np

        pod, ssd, device = build_storage_pod(remote=True)
        workload = BlockWorkload(pod.sim, device, rate_iops=500_000,
                                 queue_depth=8, rng=np.random.default_rng(1))
        workload.start(0.01)
        pod.run(0.05)
        # Open-loop overload: many issue ticks find the queue full.
        assert workload.stats.submitted < 500_000 * 0.01
        assert workload.stats.completed == workload.stats.submitted
