"""Tests for the Figure 6 microbench internals and timing hooks."""

import pytest

from repro.channel.microbench import ChannelMicrobench, _PipelineTiming
from repro.channel.protocol import TimingHooks


class TestPipelineTiming:
    def test_prefetch_arrival_tracked(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.clock_ns = 1000.0
        timing.on_prefetch_issued(7)
        assert timing.ready[7] == 1250.0

    def test_hit_before_arrival_stalls(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.clock_ns = 1000.0
        timing.on_prefetch_issued(7)
        timing.clock_ns = 1100.0
        assert timing.hit_stall_ns(7) == pytest.approx(150.0)

    def test_hit_after_arrival_free(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.on_prefetch_issued(7)
        timing.clock_ns = 500.0
        assert timing.hit_stall_ns(7) == 0.0

    def test_stall_consumed_once(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.on_prefetch_issued(7)
        timing.hit_stall_ns(7)
        assert timing.hit_stall_ns(7) == 0.0   # entry removed

    def test_invalidate_cancels_inflight(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.on_prefetch_issued(7)
        timing.on_invalidate(7)
        assert timing.hit_stall_ns(7) == 0.0

    def test_demand_fill_clears_entry(self):
        timing = _PipelineTiming(cxl_load_ns=250.0)
        timing.on_prefetch_issued(7)
        timing.on_demand_fill(7)
        assert 7 not in timing.ready

    def test_default_hooks_are_no_ops(self):
        hooks = TimingHooks()
        hooks.on_prefetch_issued(1)
        hooks.on_demand_fill(1)
        hooks.on_invalidate(1)
        assert hooks.hit_stall_ns(1) == 0.0


class TestMicrobenchHarness:
    def test_64_byte_messages_supported(self):
        result = ChannelMicrobench("invalidate-prefetched", slots=512,
                                   message_size=64).run(2000)
        assert result.messages > 0
        assert result.achieved_mops > 0

    def test_counter_batch_override(self):
        bench = ChannelMicrobench("invalidate-prefetched", slots=512,
                                  counter_batch=8)
        bench.run(2000)
        assert bench.receiver.counters.counter_updates > 2000 // 256

    def test_warmup_fraction_skips_messages(self):
        bench = ChannelMicrobench("bypass-cache", slots=512)
        full = bench.run(2000, warmup_fraction=0.0)
        bench2 = ChannelMicrobench("bypass-cache", slots=512)
        skipped = bench2.run(2000, warmup_fraction=0.5)
        assert skipped.messages == pytest.approx(full.messages / 2, abs=2)

    def test_posted_writes_are_delayed(self):
        """The sender's CLWB lands in the pool only after the flight time;
        until then the ring line is unchanged (microbench-only behaviour)."""
        bench = ChannelMicrobench("invalidate-prefetched", slots=512)
        bench._actor_now = 0.0
        bench.sender.cache.store(bench.layout.region.base, b"\x01" * 16)
        bench.sender.cache.clwb(bench.layout.region.base)
        assert bench.pool.read_line(bench.layout.region.base // 64) == bytes(64)
        bench._apply_pending(1e9)
        assert bench.pool.read_line(
            bench.layout.region.base // 64)[:16] == b"\x01" * 16
