"""Shared fixtures for the Oasis reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CXLConfig, OasisConfig
from repro.mem.cache import HostCache
from repro.mem.cxl import CXLMemoryPool
from repro.sim.core import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def config():
    return OasisConfig()


@pytest.fixture
def small_pool():
    """A 1 MB CXL pool, plenty for unit tests."""
    return CXLMemoryPool(CXLConfig(), size=1 << 20)


@pytest.fixture
def cache_pair(small_pool):
    """Two hosts' non-coherent caches over the same pool."""
    return (
        HostCache(small_pool, "hostA"),
        HostCache(small_pool, "hostB"),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
