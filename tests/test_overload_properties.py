"""Property tests for the overload-control primitives (PR 9).

Hypothesis drives random operation sequences against the token-bucket
retry budget, the circuit-breaker state machine and the CoDel admission
queue, checking the invariants the frontends rely on:

* the budget never over-spends: granted retries are bounded by the initial
  float plus ``ratio`` tokens per fresh deposit, and the bucket level never
  leaves ``[0, cap]``;
* the breaker always re-closes after a healthy half-open probe, never
  admits traffic while open before the dwell elapses, and is deterministic
  under a fixed seed (trip/probe instants byte-identical);
* the admission queue conserves items (admitted == popped + shed + queued)
  and never holds more than ``depth`` entries.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overload import AdmissionQueue, CircuitBreaker, RetryBudget
from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN

# -- retry budget -----------------------------------------------------------

BudgetOp = st.one_of(
    st.tuples(st.just("deposit"), st.integers(1, 5)),
    st.tuples(st.just("spend"), st.just(1)),
)


class TestRetryBudgetProperties:
    @given(st.lists(BudgetOp, max_size=200),
           st.floats(0.0, 1.0), st.floats(0.0, 8.0), st.floats(1.0, 64.0))
    @settings(max_examples=200, deadline=None)
    def test_budget_never_overspends(self, ops, ratio, initial, cap):
        budget = RetryBudget(ratio=ratio, initial=initial, cap=cap)
        attempts = 0
        for op, arg in ops:
            if op == "deposit":
                budget.deposit(arg)
            else:
                attempts += 1
                budget.try_spend()
            assert -1e-9 <= budget.tokens <= cap + 1e-9
        # Every granted retry consumed one whole token, and tokens only
        # enter via the initial float and ratio-scaled deposits.
        ceiling = min(initial, cap) + budget.deposits * ratio
        assert budget.spent <= math.floor(ceiling + 1e-9)
        assert budget.spent + budget.denied == attempts

    @given(st.lists(BudgetOp, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_zero_ratio_grants_only_the_initial_float(self, ops):
        budget = RetryBudget(ratio=0.0, initial=2.0, cap=64.0)
        for op, arg in ops:
            budget.deposit(arg) if op == "deposit" else budget.try_spend()
        assert budget.spent <= 2


# -- circuit breaker --------------------------------------------------------

BreakerOp = st.one_of(
    st.tuples(st.just("allow"), st.just(0)),
    st.tuples(st.just("success"), st.just(0)),
    st.tuples(st.just("failure"), st.just(0)),
    st.tuples(st.just("advance"), st.integers(1, 100)),   # x1 ms
)


def drive(breaker, ops):
    """Apply an op sequence, returning the (t, event) trace."""
    now = 0.0
    trace = []
    for op, arg in ops:
        if op == "advance":
            now += arg * 1e-3
        elif op == "allow":
            trace.append((now, "allow", breaker.allow(now)))
        elif op == "success":
            breaker.record_success(now)
        elif op == "failure":
            breaker.record_failure(now)
        trace.append((now, "state", breaker.state, breaker.open_until))
    return trace


class TestCircuitBreakerProperties:
    @given(st.lists(BreakerOp, max_size=200), st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_state_machine_stays_consistent(self, ops, threshold):
        breaker = CircuitBreaker(failure_threshold=threshold, open_s=0.02)
        now = 0.0
        for op, arg in ops:
            if op == "advance":
                now += arg * 1e-3
            elif op == "allow":
                allowed = breaker.allow(now)
                if breaker.state == OPEN:
                    # Open and before the dwell: must reject.
                    assert not allowed and now < breaker.open_until
                elif breaker.state == CLOSED:
                    assert allowed
            elif op == "success":
                breaker.record_success(now)
                assert breaker.state == CLOSED
                assert breaker.failures == 0
            elif op == "failure":
                breaker.record_failure(now)
            assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
            assert breaker.failures < max(threshold, 1) or breaker.state != CLOSED

    @given(st.integers(1, 8), st.floats(0.001, 0.1))
    @settings(max_examples=100, deadline=None)
    def test_healthy_probe_always_recloses(self, threshold, open_s):
        breaker = CircuitBreaker(failure_threshold=threshold, open_s=open_s)
        for _ in range(threshold):
            breaker.record_failure(0.0)
        assert breaker.state == OPEN and breaker.trips == 1
        assert not breaker.allow(open_s * 0.5)      # dwell not elapsed
        probe_at = breaker.open_until
        assert breaker.allow(probe_at)              # the half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(probe_at)          # one probe at a time
        breaker.record_success(probe_at + 1e-3)
        assert breaker.state == CLOSED
        assert breaker.reclosures == 1
        assert breaker.allow(probe_at + 2e-3)       # traffic flows again

    @given(st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_failed_probe_reopens(self, threshold):
        breaker = CircuitBreaker(failure_threshold=threshold, open_s=0.01)
        for _ in range(threshold):
            breaker.record_failure(0.0)
        probe_at = breaker.open_until
        assert breaker.allow(probe_at)
        breaker.record_failure(probe_at + 1e-3)
        assert breaker.state == OPEN and breaker.trips == 2
        assert breaker.open_until > probe_at

    @given(st.lists(BreakerOp, max_size=150), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_deterministic_under_fixed_seed(self, ops, seed):
        def run():
            breaker = CircuitBreaker(
                failure_threshold=2, open_s=0.02, probe_jitter_s=0.005,
                rng=np.random.default_rng(seed))
            return drive(breaker, ops)

        assert run() == run()


# -- admission queue --------------------------------------------------------

QueueOp = st.one_of(
    st.tuples(st.just("push"), st.just(0)),
    st.tuples(st.just("pop"), st.just(0)),
    st.tuples(st.just("advance"), st.integers(1, 40)),    # x1 ms
)


class TestAdmissionQueueProperties:
    @given(st.lists(QueueOp, max_size=300), st.integers(1, 32))
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_depth_cap(self, ops, depth):
        queue = AdmissionQueue(depth=depth, target_s=0.005, interval_s=0.02)
        now, next_item, popped, shed = 0.0, 0, 0, 0
        for op, _arg in ops:
            if op == "advance":
                now += _arg * 1e-3
            elif op == "push":
                queue.push(now, next_item)
                next_item += 1
            else:
                item, dropped = queue.pop(now)
                shed += len(dropped)
                if item is not None:
                    popped += 1
            assert len(queue) <= depth
        assert queue.admitted == popped + shed + len(queue)
        assert queue.shed_sojourn == shed
        assert queue.admitted + queue.shed_full == next_item

    def test_front_drop_requires_a_standing_queue(self):
        """A transient spike shorter than ``interval_s`` is never shed."""
        queue = AdmissionQueue(depth=64, target_s=0.005, interval_s=0.025)
        for i in range(10):
            queue.push(0.0, i)
        # Head is over target at 10 ms, but the standing-queue interval has
        # not elapsed: pops still succeed oldest-first with no drops.
        item, dropped = queue.pop(0.010)
        assert item == 0 and dropped == []
        # 40 ms in, the queue has been standing past target for > interval:
        # the stale heads are dropped from the front and the fresh arrival
        # (whose client is still waiting) gets served.
        queue.push(0.039, 99)
        item, dropped = queue.pop(0.040)
        assert dropped == list(range(1, 10))
        assert item == 99
        assert queue.shed_sojourn == len(dropped)

    def test_drop_state_resets_when_the_queue_drains_empty(self):
        """Regression: stale ``_first_above`` must not survive an idle gap.

        A burst whose head momentarily exceeds ``target_s`` arriving after
        the queue drained empty must get a *fresh* ``interval_s``
        standing-queue observation, not an instant front-drop against drop
        state left over from the previous burst.
        """
        queue = AdmissionQueue(depth=64, target_s=0.005, interval_s=0.025)
        # First burst: head breaches target (starting the CoDel clock) and
        # is then served, draining the queue empty.
        queue.push(0.0, "old")
        item, dropped = queue.pop(0.006)      # sojourn 6 ms > target
        assert item == "old" and dropped == []
        assert len(queue) == 0
        # Long idle gap, then a fresh burst whose head also waits 6 ms.
        queue.push(1.000, "fresh")
        item, dropped = queue.pop(1.006)
        # Pre-fix: _first_above was still 0.006, so 1.006 - 0.006 >> 25 ms
        # front-dropped "fresh" instantly.  Canonical CoDel serves it.
        assert item == "fresh"
        assert dropped == []
        assert queue.shed_sojourn == 0

    def test_drop_state_resets_after_codel_drains_the_queue(self):
        """Front-dropping the whole backlog also exits the drop state."""
        queue = AdmissionQueue(depth=64, target_s=0.005, interval_s=0.025)
        for i in range(4):
            queue.push(0.0, i)
        item, dropped = queue.pop(0.010)      # starts the CoDel clock
        assert item == 0 and dropped == []
        item, dropped = queue.pop(0.040)      # standing queue: drains it
        assert item is None and dropped == [1, 2, 3]
        assert len(queue) == 0
        queue.push(0.500, "next")
        item, dropped = queue.pop(0.506)
        assert item == "next" and dropped == []
