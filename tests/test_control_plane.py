"""Tests for the replicated, epoch-fenced control plane (§3.3.3, §3.5).

Covers the three pillars of the crash-recoverable allocator:

- **Epoch fencing**: the allocator-side epoch table, its CXL-resident
  mirror, the on-wire stamp in both engines' message formats, and the
  end-to-end FENCED -> resync -> retry recovery at net and storage drivers.
- **Replication**: command-ID dedup in the state machine, snapshot/restore
  convergence, and commit-gated failover surviving an allocator-leader
  crash injected between the failure report and the commit.
- **Lease lifecycle**: the periodic sweep revokes dead leases, frontends
  renew through telemetry, and an expired frontend must re-acquire (never
  silently reuse) its lease.
"""

from dataclasses import replace

import pytest

from repro.config import OasisConfig
from repro.core.control import (AllocatorStateMachine, ControlState,
                                EpochTable, NotificationBus)
from repro.core.netengine.messages import OP_TX, OP_TX_FENCED, NetMessage
from repro.core.pod import CXLPod, RackBuilder
from repro.core.storage.messages import (SOP_WRITE, STATUS_FENCED,
                                         StorageMessage)
from repro.net.packet import make_ip
from repro.sim.core import Simulator
from repro.workloads.echo import EchoClient, EchoServer

SERVER_IP = make_ip(10, 0, 0, 1)
CLIENT_IP = make_ip(10, 0, 9, 1)


class TestEpochTable:
    def test_grant_then_check(self):
        table = EpochTable()
        table.publish_grant("nic0", 7, epoch=3)
        assert table.check("nic0", 7, 3)
        assert not table.check("nic0", 7, 2)   # stale stamp
        assert table.stamp("nic0", 7) == 3

    def test_stamp_compares_low_byte_only(self):
        table = EpochTable()
        table.publish_grant("nic0", 7, epoch=0x1FE)
        assert table.check("nic0", 7, 0xFE)
        assert not table.check("nic0", 7, 0xFD)

    def test_unknown_writer_legacy_vs_fenced_device(self):
        table = EpochTable()
        # A device that never minted an epoch predates fencing: accept.
        assert table.check("nic0", 7, 0)
        # Once the device has fencing history, unknown writers are rejected.
        table.publish_device("nic0", 1)
        assert not table.check("nic0", 7, 0)

    def test_device_epoch_monotone(self):
        table = EpochTable()
        table.publish_device("nic0", 5)
        table.publish_device("nic0", 3)   # stale publication must not regress
        assert table.device_epoch["nic0"] == 5

    def test_revoke_min_epoch_guard_preserves_regrant(self):
        """A delayed revoke (migration grace) must not kill a newer grant."""
        table = EpochTable()
        table.publish_grant("nic0", 7, epoch=2)
        table.publish_grant("nic0", 7, epoch=9)   # re-granted meanwhile
        table.publish_revoke("nic0", 7, min_epoch=5)   # the stale revoke
        assert table.entry("nic0", 7) == 9
        assert table.check("nic0", 7, 9)

    def test_revoke_removes_older_entry(self):
        table = EpochTable()
        table.publish_grant("nic0", 7, epoch=2)
        table.publish_revoke("nic0", 7, min_epoch=5)
        assert table.entry("nic0", 7) is None
        assert not table.check("nic0", 7, 2)

    def test_cxl_mirror_round_trips_device_epoch(self):
        pod = CXLPod(mode="oasis")
        h0 = pod.add_host()
        nic = pod.add_nic(h0)
        pod.add_instance(h0, ip=SERVER_IP, nic=nic)
        table = pod.allocator.epochs
        assert table.resident_epoch(nic.name) == table.device_epoch[nic.name]


class TestMessageEpochs:
    def test_net_message_round_trips_epoch(self):
        msg = NetMessage(OP_TX, 1500, SERVER_IP, 0xDEAD40, epoch=0x1A7)
        again = NetMessage.unpack(msg.pack())
        assert again.epoch == 0xA7          # low byte on the wire
        assert again.opcode == OP_TX

    def test_net_fenced_opcode_round_trips(self):
        msg = NetMessage(OP_TX_FENCED, 0, SERVER_IP, 0xDEAD40, epoch=2)
        assert NetMessage.unpack(msg.pack()).opcode == OP_TX_FENCED

    def test_storage_message_round_trips_epoch_and_status(self):
        msg = StorageMessage(SOP_WRITE, cid=9, slba=4, nlb=2,
                             buffer_addr=0x1000, instance_ip=SERVER_IP,
                             status=STATUS_FENCED, epoch=0x2B0)
        again = StorageMessage.unpack(msg.pack())
        assert again.epoch == 0xB0
        assert again.status == STATUS_FENCED
        assert len(msg.pack()) == 64


class TestStateMachine:
    def _place(self, cid="c1", ip=SERVER_IP):
        return {"op": "place", "cid": cid, "ip": ip, "host": "h0",
                "nic": "nic0", "backup": None, "demand": 1.0, "epoch": 1,
                "now": 0.0}

    def _state(self):
        state = ControlState(lease_ttl_s=1.0)
        from repro.core.allocator.policy import DeviceState
        state.devices["nic0"] = DeviceState("nic0", host="h0", capacity=100.0)
        return state

    def test_command_id_dedup(self):
        machine = AllocatorStateMachine(self._state())
        assert machine.apply(self._place())
        assert not machine.apply(self._place())   # replayed log entry
        assert machine.state.devices["nic0"].allocated == 1.0

    def test_distinct_cids_apply_independently(self):
        machine = AllocatorStateMachine(self._state())
        assert machine.apply(self._place("c1", make_ip(10, 0, 0, 1)))
        assert machine.apply(self._place("c2", make_ip(10, 0, 0, 2)))
        assert machine.state.devices["nic0"].allocated == 2.0

    def test_snapshot_restore_preserves_signature(self):
        machine = AllocatorStateMachine(self._state())
        machine.apply(self._place())
        snap = machine.state.snapshot()
        restored = ControlState.restore(snap)
        assert restored.signature() == machine.state.signature()
        assert restored.assignments[SERVER_IP] == "nic0"
        assert "c1" in restored.applied_cids

    def test_restored_replica_rejects_replayed_cid(self):
        machine = AllocatorStateMachine(self._state())
        machine.apply(self._place())
        replica = AllocatorStateMachine(
            ControlState.restore(machine.state.snapshot()))
        assert not replica.apply(self._place())   # already in the snapshot


class TestNotificationBus:
    def test_extra_delay_applied_per_host(self):
        sim = Simulator()
        bus = NotificationBus(sim)
        arrived = []
        bus.delay_extra("h1", 0.5)
        bus.send("h0", 0.001, lambda: arrived.append(("h0", sim.now)))
        bus.send("h1", 0.001, lambda: arrived.append(("h1", sim.now)))
        sim.run(1.0)
        assert dict(arrived) == pytest.approx({"h0": 0.001, "h1": 0.501})
        assert bus.delayed == 1 and bus.delivered == 2

    def test_drop_next_swallows_exactly_n(self):
        sim = Simulator()
        bus = NotificationBus(sim)
        arrived = []
        bus.drop_next("h0", count=2)
        for _ in range(3):
            bus.send("h0", 0.001, lambda: arrived.append(sim.now))
        sim.run(1.0)
        assert len(arrived) == 1
        assert bus.dropped == 2

    def test_clear_hooks(self):
        sim = Simulator()
        bus = NotificationBus(sim)
        bus.delay_extra("h0", 1.0)
        bus.drop_next("h0", 5)
        bus.clear_delay("h0")
        bus.clear_drops("h0")
        arrived = []
        bus.send("h0", 0.001, lambda: arrived.append(sim.now))
        sim.run(1.0)
        assert arrived == pytest.approx([0.001])


def build_failover_pod(raft_replicas=0):
    pod = CXLPod(mode="oasis")
    h0, h1 = pod.add_host(), pod.add_host()
    nic0 = pod.add_nic(h0)
    nic1 = pod.add_nic(h1, is_backup=True)
    inst = pod.add_instance(h1, ip=SERVER_IP, nic=nic0)
    client = pod.add_external_client(ip=CLIENT_IP)
    if raft_replicas:
        pod.enable_raft(replicas=raft_replicas)
    return pod, inst, client, nic0, nic1


class TestCommitGatedFailover:
    def test_failover_waits_for_leader(self):
        """With no leader, the failover command queues; it applies exactly
        once after the election instead of running unreplicated."""
        pod, inst, client, nic0, nic1 = build_failover_pod(raft_replicas=3)
        pod.run(0.2)
        leader = pod.allocator.leader_node()
        assert leader is not None
        leader.crash()
        pod.fail_switch_port(nic0)
        pod.run(0.05)   # detection + processing, but no leader yet
        assert pod.allocator.failovers_executed == 0
        assert pod.allocator.pending_commands >= 1
        pod.run(0.6)    # re-election + retry loop re-proposes the command
        assert pod.allocator.failovers_executed == 1
        assert pod.allocator.failover_log[nic0.name] == 1
        assert pod.allocator.pending_commands == 0
        assert pod.allocator.assignments[SERVER_IP] == nic1.name
        pod.stop()

    def test_leader_crash_mid_failover_exactly_once(self):
        """The acceptance scenario: crash the allocator leader between the
        failure report and the commit; the new leader completes the same
        failover exactly once and every replica converges."""
        pod, inst, client, nic0, nic1 = build_failover_pod(raft_replicas=3)
        pod.run(0.2)
        old_leader = pod.allocator.leader_node()
        pod.fail_switch_port(nic0)
        # Detection lands at the next 25 ms monitor tick, the commit 10 ms
        # later: crash the leader in between.
        pod.sim.schedule(0.030, old_leader.crash)
        pod.run(0.7)
        allocator = pod.allocator
        assert allocator.failovers_executed == 1
        assert allocator.failover_log[nic0.name] == 1
        assert allocator.pending_commands == 0
        new_leader = allocator.leader_node()
        assert new_leader is not None and new_leader is not old_leader
        # The crashed replica rejoins and converges from the leader's log.
        old_leader.restart()
        pod.run(0.4)
        leader = allocator.leader_node()
        for node in pod.raft_nodes:
            if node.alive and node.last_applied == leader.last_applied:
                assert (allocator.replica_signature(node.node_id)
                        == allocator.state.signature())
        assert any(node is old_leader and node.alive
                   and node.last_applied == leader.last_applied
                   for node in pod.raft_nodes)
        pod.stop()

    def test_replicas_converge_after_admission_ops(self):
        pod, inst, client, nic0, nic1 = build_failover_pod(raft_replicas=3)
        pod.run(0.3)   # election + async replication of the placement
        allocator = pod.allocator
        assert allocator.pending_commands == 0
        for node in pod.raft_nodes:
            assert (allocator.replica_signature(node.node_id)
                    == allocator.state.signature())
        pod.stop()


class TestFencingEndToEnd:
    def test_delayed_notification_is_fenced_then_resynced(self):
        """A frontend whose failover notification is delayed keeps posting
        stale-epoch work; the backend rejects every post with FENCED (zero
        accepted) and the frontend recovers through an allocator resync."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        EchoServer(pod.sim, inst)
        echo = EchoClient(pod.sim, client, SERVER_IP, rate_pps=4000)
        echo.start(1.0)
        pod.run(0.3)
        # Delay every notification to the victim's host past the failover.
        pod.allocator.notify.delay_extra("h1", 0.10)
        pod.fail_switch_port(nic0)
        pod.run(0.7)
        backend0 = pod.backends[nic0.name]
        frontend = pod.frontends["h1"]
        assert backend0.fence_rejects > 0
        assert backend0.stale_accepted == 0
        assert frontend.tx_fenced == backend0.fence_rejects
        assert frontend.resyncs >= 1
        # Traffic resumed on the backup despite the stale window.
        received_mid = echo.stats.received
        pod.run(0.3)
        assert echo.stats.received > received_mid
        assert pod.frontends["h1"].record_of(SERVER_IP).primary.name == nic1.name
        pod.stop()

    def test_monitor_mode_counts_stale_writes(self):
        """fencing_enabled=False keeps the epoch table attached but lets
        stale posts through, counting them as ``stale_accepted``."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        backend0 = pod.backends[nic0.name]
        backend0.fencing_enabled = False
        EchoServer(pod.sim, inst)
        echo = EchoClient(pod.sim, client, SERVER_IP, rate_pps=4000)
        echo.start(0.6)
        pod.run(0.1)
        # Invalidate the frontend's epoch behind its back.
        pod.allocator.epochs.publish_revoke(
            nic0.name, SERVER_IP,
            pod.allocator.epochs.device_epoch[nic0.name] + 1)
        pod.run(0.1)
        assert backend0.stale_accepted > 0
        assert backend0.fence_rejects == 0
        pod.stop()

    def test_set_fencing_off_detaches_table(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.set_fencing(False)
        assert pod.backends[nic0.name].epochs is None
        pod.set_fencing(True)
        assert pod.backends[nic0.name].epochs is pod.allocator.epochs

    def test_storage_fencing_resyncs_and_completes(self):
        """A stale storage stamp is rejected with STATUS_FENCED; the
        frontend resyncs through the allocator and the retry succeeds."""
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        pod.add_nic(h0)
        ssd = pod.add_ssd(h0)
        inst = pod.add_instance(h1, ip=SERVER_IP)
        device = pod.add_block_device(inst, ssd)
        pod.run(0.01)
        # Mint a newer epoch the frontend has not heard about.
        table = pod.allocator.epochs
        table.publish_grant(ssd.name, SERVER_IP,
                            table.device_epoch[ssd.name] + 1)
        statuses = []
        frontend = pod.storage_frontends["h1"]
        frontend.submit_write(device, 0, b"\x5a" * device.block_size,
                              lambda status: statuses.append(status))
        pod.run(0.5)
        assert statuses == [0]              # completed OK after the resync
        assert frontend.fenced >= 1
        assert frontend.resyncs >= 1
        backend = pod.storage_backends[ssd.name]
        assert backend.fence_rejects >= 1
        assert backend.stale_accepted == 0
        pod.stop()


class TestLeaseLifecycle:
    def test_sweep_revokes_dead_lease_and_reacquires(self):
        """Without renewals the sweep revokes the lease; the instance parks
        and re-acquires a fresh grant with a higher epoch."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.frontends["h1"].stop_monitors()    # silence renewals
        pod.allocator.start_lease_sweeper()
        pod.run(2.0)    # lease TTL is 1 s
        allocator = pod.allocator
        assert allocator.lease_expirations >= 1
        nic = allocator.assignments[SERVER_IP]
        lease = allocator.leases.get(SERVER_IP, nic)
        assert lease is not None and lease.valid(pod.sim.now)
        # The original grant was fenced off; the live entry matches the
        # re-acquired lease's freshly minted epoch.
        assert allocator.epochs.entry(nic, SERVER_IP) == lease.epoch
        if nic != nic0.name:
            assert allocator.epochs.entry(nic0.name, SERVER_IP) is None
        pod.stop()

    def test_frontend_telemetry_renews_lease(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.allocator.start_lease_sweeper()
        pod.run(2.5)    # several TTLs with the renewal loop running
        assert pod.allocator.lease_expirations == 0
        lease = pod.allocator.leases.get(SERVER_IP, nic0.name)
        assert lease is not None and lease.valid(pod.sim.now)
        pod.stop()

    def test_expired_telemetry_renewal_is_ignored(self):
        """A renewal arriving after expiry must not revive the dead lease."""
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.frontends["h1"].stop_monitors()
        pod.run(1.5)    # past the 1 s TTL, no sweeper: lease dead in table
        allocator = pod.allocator
        lease = allocator.leases.get(SERVER_IP, nic0.name)
        assert lease is not None and not lease.valid(pod.sim.now)
        allocator.on_frontend_telemetry(
            {"host": "h1", "ips": [SERVER_IP], "time": pod.sim.now})
        assert not lease.valid(pod.sim.now)   # silently reusing is forbidden
        pod.stop()

    def test_resync_after_expiry_grants_fresh_lease(self):
        pod, inst, client, nic0, nic1 = build_failover_pod()
        pod.frontends["h1"].stop_monitors()
        pod.run(1.5)
        allocator = pod.allocator
        old = allocator.leases.get(SERVER_IP, nic0.name)
        assert old is not None and not old.valid(pod.sim.now)
        allocator.resync_instance(SERVER_IP, "h1")
        pod.run(0.1)
        nic = allocator.assignments[SERVER_IP]
        fresh = allocator.leases.get(SERVER_IP, nic)
        assert fresh is not old
        assert fresh.valid(pod.sim.now)
        assert allocator.lease_expirations >= 1
        pod.stop()


class TestShardedFailover:
    """Cross-shard isolation: each pool's shard is an independent Raft
    group, so losing one shard's leader never blocks its siblings."""

    @staticmethod
    def _rack(batch_window_ms=0.0):
        base = OasisConfig()
        config = base.with_(seed=11, failover=replace(
            base.failover, commit_batch_window_ms=batch_window_ms))
        pod = RackBuilder(hosts=8, pools=2, nics_per_host=2, ssds_per_host=0,
                          config=config).build()
        pod.enable_raft(replicas=3)
        pod.run(0.25)   # both shards elect their leaders
        return pod

    def test_leader_crash_in_one_shard_does_not_block_siblings(self):
        pod = self._rack()
        alloc = pod.allocator
        s0, s1 = alloc.shards["pool0"], alloc.shards["pool1"]
        leader0 = s0.leader_node()
        assert leader0 is not None and s1.leader_node() is not None
        leader0.crash()
        ip0, ip1 = make_ip(10, 3, 0, 1), make_ip(10, 3, 0, 2)
        alloc.place_instance(ip0, pod.hosts[0].name, 0.25)   # pool0: no leader
        alloc.place_instance(ip1, pod.hosts[4].name, 0.25)   # pool1: healthy
        pod.run(0.05)
        # The sibling shard replicated immediately; the leaderless shard
        # keeps the command queued for the retry loop.
        assert s1.pending_commands == 0
        assert s0.pending_commands >= 1
        lease1 = s1.state.leases.get(ip1, s1.assignments[ip1])
        assert lease1 is not None and lease1.valid(pod.sim.now)
        # Re-election + retry drain the queue; the rejoined replica catches
        # up and every shard converges.
        pod.run(0.8)
        assert s0.pending_commands == 0
        leader0.restart()
        pod.run(0.4)
        assert alloc.pending_commands == 0
        assert alloc.convergence_ok()
        pod.stop()

    def test_duplicate_failure_reports_stay_exactly_once_per_shard(self):
        pod = self._rack()
        alloc = pod.allocator
        s0, s1 = alloc.shards["pool0"], alloc.shards["pool1"]
        ip0, ip1 = make_ip(10, 3, 1, 1), make_ip(10, 3, 1, 2)
        alloc.place_instance(ip0, pod.hosts[0].name, 0.25)
        alloc.place_instance(ip1, pod.hosts[4].name, 0.25)
        pod.run(0.05)
        dev0, dev1 = s0.assignments[ip0], s1.assignments[ip1]
        leader0 = s0.leader_node()
        leader0.crash()
        for _ in range(3):          # duplicate reports on both shards
            alloc.on_failure_report(dev0)
            alloc.on_failure_report(dev1)
        pod.run(0.1)
        # The healthy shard completes its failover promptly; the leaderless
        # one holds the commit-gated command until re-election.
        assert s1.failovers_executed == 1
        assert s1.failover_log[dev1] == 1
        assert s0.failovers_executed == 0
        assert alloc.duplicate_reports >= 4
        pod.run(0.8)
        assert s0.failovers_executed == 1
        assert s0.failover_log[dev0] == 1
        assert alloc.failover_log[dev0] == 1
        assert alloc.failover_log[dev1] == 1
        assert s1.assignments[ip1] != dev1          # moved to the backup
        assert s0.assignments.get(ip0) != dev0      # moved (or parked)
        pod.stop()
