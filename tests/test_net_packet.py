"""Tests for the frame wire format and address helpers."""

import pytest

from repro.net.packet import (
    BROADCAST_MAC,
    ETH_MIN_FRAME,
    HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    Frame,
    ip_str,
    mac_str,
    make_ip,
    make_mac,
)


class TestAddresses:
    def test_make_ip(self):
        assert make_ip(10, 0, 0, 1) == 0x0A000001

    def test_ip_str_roundtrip(self):
        assert ip_str(make_ip(192, 168, 1, 200)) == "192.168.1.200"

    def test_make_mac_locally_administered(self):
        mac = make_mac(3, 1)
        assert (mac >> 40) == 0x02

    def test_mac_str_format(self):
        assert mac_str(make_mac(0, 0)) == "02:00:00:00:00:00"

    def test_macs_unique_per_host_device(self):
        assert make_mac(1, 0) != make_mac(1, 1) != make_mac(2, 0)


class TestFrame:
    def _frame(self, **kwargs):
        defaults = dict(
            dst_mac=make_mac(1), src_mac=make_mac(2),
            src_ip=make_ip(10, 0, 0, 1), dst_ip=make_ip(10, 0, 0, 2),
            proto=PROTO_UDP, src_port=1234, dst_port=80,
            seq=42, payload=b"payload-bytes",
        )
        defaults.update(kwargs)
        return Frame(**defaults)

    def test_pack_unpack_roundtrip(self):
        frame = self._frame(wire_size=1500)
        out = Frame.unpack(frame.pack())
        assert out.dst_mac == frame.dst_mac
        assert out.src_mac == frame.src_mac
        assert out.src_ip == frame.src_ip
        assert out.dst_ip == frame.dst_ip
        assert out.proto == frame.proto
        assert out.src_port == frame.src_port
        assert out.dst_port == frame.dst_port
        assert out.seq == frame.seq
        assert out.payload == frame.payload
        assert out.wire_size == 1500

    def test_wire_size_defaults_to_min_frame(self):
        frame = self._frame(payload=b"x")
        assert frame.wire_size == ETH_MIN_FRAME

    def test_wire_size_grows_with_payload(self):
        frame = self._frame(payload=b"x" * 1000)
        assert frame.wire_size == HEADER_SIZE + 1000

    def test_wire_size_floor_is_packed_size(self):
        frame = self._frame(payload=b"x" * 200, wire_size=100)
        assert frame.wire_size == HEADER_SIZE + 200

    def test_packed_size_excludes_padding(self):
        frame = self._frame(payload=b"x" * 10, wire_size=1500)
        assert frame.packed_size == HEADER_SIZE + 10
        assert len(frame.pack()) == frame.packed_size

    def test_reply_template_swaps_addresses(self):
        frame = self._frame()
        reply = frame.reply_template()
        assert reply.dst_mac == frame.src_mac
        assert reply.src_ip == frame.dst_ip
        assert reply.dst_ip == frame.src_ip
        assert reply.dst_port == frame.src_port
        assert reply.src_port == frame.dst_port

    def test_reply_template_overrides(self):
        reply = self._frame().reply_template(payload=b"pong", flags=1)
        assert reply.payload == b"pong"
        assert reply.flags == 1

    def test_tcp_fields_roundtrip(self):
        frame = self._frame(proto=PROTO_TCP, ack=7, flags=1)
        out = Frame.unpack(frame.pack())
        assert out.ack == 7
        assert out.flags == 1

    def test_meta_not_serialized(self):
        frame = self._frame()
        frame.meta["timestamp"] = 123.0
        out = Frame.unpack(frame.pack())
        assert out.meta == {}

    def test_broadcast_mac(self):
        assert BROADCAST_MAC == 0xFFFFFFFFFFFF
