"""Tests for shared regions and the DES channel adapters."""

import pytest

from repro.config import OasisConfig
from repro.core.datapath import ChannelPair, DoorbellChannel, LocalChannel, SharedRegions
from repro.errors import ChannelFullError, MemoryFault
from repro.mem.cache import HostCache
from repro.mem.cxl import CXLMemoryPool
from repro.sim.core import USEC, Signal, Simulator


@pytest.fixture
def regions():
    return SharedRegions(CXLMemoryPool(size=64 << 20))


def payload(i):
    return bytes([1]) + i.to_bytes(8, "little") + bytes(7)


class TestSharedRegions:
    def test_alloc_ring_carves_distinct_regions(self, regions):
        r1 = regions.alloc_ring(16, "a", slots=64)
        r2 = regions.alloc_ring(16, "b", slots=64)
        assert r1.region.end <= r2.region.base or r2.region.end <= r1.region.base

    def test_free_returns_space(self, regions):
        before = regions.free_bytes
        region = regions.alloc(1 << 20, "tmp")
        regions.free(region)
        assert regions.free_bytes == before

    def test_exhaustion_raises(self):
        small = SharedRegions(CXLMemoryPool(size=1 << 16))
        with pytest.raises(MemoryFault):
            small.alloc(1 << 20, "too-big")


class TestDoorbellChannel:
    def _channel(self, sim, regions, hop_us=1.0):
        pool = regions.pool
        layout = regions.alloc_ring(16, "ch", slots=64)
        return DoorbellChannel(
            sim, layout,
            HostCache(pool, "sender-host"),
            HostCache(pool, "receiver-host"),
            "ch", hop_us=hop_us,
        )

    def test_send_wakes_bound_signal_after_hop(self, sim, regions):
        channel = self._channel(sim, regions, hop_us=2.0)
        signal = Signal(sim, auto_reset=True)
        channel.bind(signal)
        wakes = []

        def receiver():
            while True:
                yield signal
                wakes.append(sim.now)

        sim.spawn(receiver())
        sim.schedule(0.0, channel.send, payload(1))
        sim.run(until=10 * USEC)
        assert wakes and wakes[0] == pytest.approx(2 * USEC)

    def test_drain_returns_messages_in_order(self, sim, regions):
        channel = self._channel(sim, regions)
        channel.send_many([payload(i) for i in range(10)])
        sim.run(until=sim.now + 10 * USEC)   # let the messages become visible
        got, cost = channel.drain()
        assert got == [payload(i) for i in range(10)]
        assert cost > 0

    def test_messages_invisible_before_hop(self, sim, regions):
        """A drain before the hop elapses must see nothing -- later messages
        cannot ride an earlier doorbell."""
        channel = self._channel(sim, regions, hop_us=5.0)
        channel.send(payload(1))
        got, _ = channel.drain()
        assert got == []
        sim.run(until=sim.now + 6 * USEC)
        got, _ = channel.drain()
        assert got == [payload(1)]

    def test_notify_coalesced_until_fired(self, sim, regions):
        channel = self._channel(sim, regions, hop_us=5.0)
        signal = Signal(sim, auto_reset=True)
        channel.bind(signal)
        wakes = []

        def receiver():
            while True:
                yield signal
                wakes.append(sim.now)

        sim.spawn(receiver())
        for i in range(5):
            sim.schedule(i * 0.1 * USEC, channel.send, payload(i))
        sim.run(until=100 * USEC)
        assert len(wakes) == 1       # one doorbell for the burst

    def test_send_many_full_raises(self, sim, regions):
        pool = regions.pool
        layout = regions.alloc_ring(16, "tiny", slots=16)
        channel = DoorbellChannel(sim, layout, HostCache(pool, "s"),
                                  HostCache(pool, "r"), "tiny")
        with pytest.raises(ChannelFullError):
            channel.send_many([payload(i) for i in range(17)])

    def test_drain_publishes_counter_when_idle(self, sim, regions):
        channel = self._channel(sim, regions)
        channel.send_many([payload(i) for i in range(4)])
        sim.run(until=sim.now + 10 * USEC)
        channel.drain()
        channel.drain()   # idle drain: forces the consumed-counter publish
        assert channel.receiver.counters.counter_updates >= 1


class TestLocalChannel:
    def test_roundtrip(self, sim):
        channel = LocalChannel(sim, "ipc")
        channel.send(b"a")
        channel.send_many([b"b", b"c"])
        got, _ = channel.drain()
        assert got == [b"a", b"b", b"c"]

    def test_doorbell(self, sim):
        channel = LocalChannel(sim, "ipc", hop_us=0.5)
        signal = Signal(sim, auto_reset=True)
        channel.bind(signal)
        wakes = []

        def receiver():
            yield signal
            wakes.append(sim.now)

        sim.spawn(receiver())
        sim.schedule(0.0, channel.send, b"x")
        sim.run(until=10 * USEC)
        assert wakes and wakes[0] == pytest.approx(0.5 * USEC)


class TestChannelPair:
    def test_over_cxl_directions_are_independent(self, sim, regions):
        pool = regions.pool
        pair = ChannelPair.over_cxl(sim, regions, HostCache(pool, "a"),
                                    HostCache(pool, "b"), "p", slots=64)
        pair.a_to_b.send(payload(1))
        pair.b_to_a.send(payload(2))
        sim.run(until=sim.now + 10 * USEC)
        assert pair.a_to_b.drain()[0] == [payload(1)]
        assert pair.b_to_a.drain()[0] == [payload(2)]

    def test_local_pair(self, sim):
        pair = ChannelPair.local(sim, "p")
        pair.a_to_b.send(b"x")
        assert pair.a_to_b.drain()[0] == [b"x"]
