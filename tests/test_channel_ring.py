"""Tests for ring layout and the epoch-bit codec."""

import pytest

from repro.channel.ring import RingLayout, decode_slot, encode_slot
from repro.errors import ChannelError
from repro.mem.layout import Region


class TestEpochCodec:
    def test_roundtrip(self):
        payload = b"\x01" + b"x" * 15
        for epoch in (0, 1):
            stamped = encode_slot(payload, epoch)
            got, got_epoch = decode_slot(stamped)
            assert got == payload
            assert got_epoch == epoch

    def test_epoch_bit_is_msb_of_first_byte(self):
        stamped = encode_slot(b"\x01" + b"\x00" * 15, 1)
        assert stamped[0] == 0x81

    def test_payload_must_leave_epoch_bit_clear(self):
        with pytest.raises(ChannelError):
            encode_slot(b"\x80" + b"\x00" * 15, 0)

    def test_empty_payload_rejected(self):
        with pytest.raises(ChannelError):
            encode_slot(b"", 0)

    def test_bad_epoch_rejected(self):
        with pytest.raises(ChannelError):
            encode_slot(b"\x01", 2)

    def test_decode_empty_rejected(self):
        with pytest.raises(ChannelError):
            decode_slot(b"")


class TestRingLayout:
    def _layout(self, slots=64, msg=16):
        size = RingLayout.required_bytes(slots, msg)
        return RingLayout(Region(0, size), slots, msg)

    def test_required_bytes_includes_counter_line(self):
        assert RingLayout.required_bytes(64, 16) == 64 * 16 + 64

    def test_messages_per_line(self):
        assert self._layout(msg=16).messages_per_line == 4
        assert self._layout(msg=64).messages_per_line == 1

    def test_slot_addresses_wrap(self):
        layout = self._layout(slots=64)
        assert layout.slot_addr(0) == layout.slot_addr(64)
        assert layout.slot_addr(1) == layout.slot_addr(0) + 16

    def test_counter_on_its_own_line(self):
        layout = self._layout(slots=64)
        assert layout.counter_addr % 64 == 0
        assert layout.counter_addr >= layout.slot_addr(63) + 16

    def test_expected_epoch_toggles_per_lap(self):
        layout = self._layout(slots=64)
        assert layout.expected_epoch(0) == 1     # lap 0: epoch 1
        assert layout.expected_epoch(63) == 1
        assert layout.expected_epoch(64) == 0    # lap 1
        assert layout.expected_epoch(128) == 1   # lap 2

    def test_zero_filled_slots_read_as_old(self):
        """Lap 0 expects epoch 1, so untouched (zero) memory is never a
        valid message -- the reason lap 0 starts at epoch 1."""
        layout = self._layout()
        _, epoch = decode_slot(bytes(16))
        assert epoch != layout.expected_epoch(0)

    def test_line_boundaries(self):
        layout = self._layout()
        assert layout.is_line_start(0)
        assert not layout.is_line_start(1)
        assert layout.is_line_end(3)
        assert not layout.is_line_end(2)

    def test_line_count(self):
        assert self._layout(slots=64, msg=16).lines == 16

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ChannelError):
            self._layout(slots=60)

    def test_bad_message_size_rejected(self):
        with pytest.raises(ChannelError):
            RingLayout(Region(0, 4096), 64, 32)

    def test_too_small_region_rejected(self):
        with pytest.raises(ChannelError):
            RingLayout(Region(0, 64), 64, 16)
