"""Tests for the shared CXL pool model."""

import pytest

from repro.config import CACHE_LINE, CXLConfig
from repro.errors import MemoryFault
from repro.mem.cxl import CXLMemoryPool, LinkStats, line_base, line_index, lines_spanned


class TestAddressMath:
    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(63) == 0
        assert line_index(64) == 1

    def test_line_base(self):
        assert line_base(100) == 64
        assert line_base(64) == 64

    def test_lines_spanned(self):
        assert list(lines_spanned(0, 64)) == [0]
        assert list(lines_spanned(60, 8)) == [0, 1]
        assert list(lines_spanned(0, 0)) == []
        assert list(lines_spanned(128, 1)) == [2]

    def test_line_base_rejects_negative_address(self):
        # The seed silently returned a "valid"-looking base for negative
        # addresses (Python floor masking), hiding sign bugs upstream.
        with pytest.raises(MemoryFault):
            line_base(-1)
        with pytest.raises(MemoryFault):
            line_base(-64)

    def test_lines_spanned_rejects_negative_address(self):
        with pytest.raises(MemoryFault):
            lines_spanned(-1, 64)
        with pytest.raises(MemoryFault):
            lines_spanned(-128, 0)   # addr checked before the size early-out


class TestPool:
    def test_unwritten_reads_as_zero(self, small_pool):
        assert small_pool.dma_read(0, 128) == bytes(128)

    def test_dma_roundtrip(self, small_pool):
        data = bytes(range(200)) + b"tail"
        small_pool.dma_write(100, data)
        assert small_pool.dma_read(100, len(data)) == data

    def test_unaligned_write_preserves_neighbours(self, small_pool):
        small_pool.dma_write(0, b"\xAA" * 128)
        small_pool.dma_write(60, b"\xBB" * 8)
        out = small_pool.dma_read(0, 128)
        assert out[:60] == b"\xAA" * 60
        assert out[60:68] == b"\xBB" * 8
        assert out[68:] == b"\xAA" * 60

    def test_out_of_bounds_rejected(self, small_pool):
        with pytest.raises(MemoryFault):
            small_pool.dma_read(small_pool.size - 4, 8)
        with pytest.raises(MemoryFault):
            small_pool.dma_write(-1, b"x")

    def test_line_write_size_enforced(self, small_pool):
        with pytest.raises(MemoryFault):
            small_pool.write_line(0, b"short")

    def test_read_line_and_write_line(self, small_pool):
        payload = bytes(range(64))
        small_pool.write_line(3, payload)
        assert small_pool.read_line(3) == payload

    def test_zero_size_pool_rejected(self):
        with pytest.raises(MemoryFault):
            CXLMemoryPool(CXLConfig(), size=0)

    def test_touched_lines_enumerates_writes(self, small_pool):
        small_pool.dma_write(64, b"x" * 64)
        lines = dict(small_pool.touched_lines())
        assert 1 in lines


class TestAccounting:
    def test_dma_accounts_lines_by_default(self, small_pool):
        small_pool.dma_write(0, b"x" * 10, host="h0")
        stats = small_pool.stats_for("h0")
        assert stats.write_bytes["payload"] == CACHE_LINE

    def test_account_bytes_override(self, small_pool):
        small_pool.dma_write(0, b"x" * 48, host="h0", account_bytes=1500)
        assert small_pool.stats_for("h0").write_bytes["payload"] == 1500

    def test_categories_separate(self, small_pool):
        small_pool.dma_write(0, b"x" * 64, host="h0", category="message")
        small_pool.dma_read(0, 64, host="h0", category="payload")
        stats = small_pool.stats_for("h0")
        assert stats.write_bytes["message"] == 64
        assert stats.read_bytes["payload"] == 64

    def test_no_host_no_accounting(self, small_pool):
        small_pool.dma_write(0, b"x" * 64)
        assert small_pool.total_traffic() == 0

    def test_total_and_direction(self, small_pool):
        small_pool.dma_write(0, b"x" * 64, host="h0")
        small_pool.dma_read(0, 64, host="h0")
        stats = small_pool.stats_for("h0")
        assert stats.total("read") == 64
        assert stats.total("write") == 64
        assert stats.total() == 128

    def test_snapshot_delta(self, small_pool):
        small_pool.dma_write(0, b"x" * 64, host="h0")
        snap = small_pool.stats_for("h0").snapshot()
        small_pool.dma_write(64, b"y" * 64, host="h0")
        delta = small_pool.stats_for("h0").delta_since(snap)
        assert delta.write_bytes["payload"] == 64

    def test_by_category_merges_directions(self, small_pool):
        small_pool.dma_write(0, b"x" * 64, host="h0", category="message")
        small_pool.dma_read(0, 64, host="h0", category="message")
        assert small_pool.stats_for("h0").by_category()["message"] == 128


class TestTransferTiming:
    def test_transfer_time_scales_with_bytes(self, small_pool):
        t1 = small_pool.transfer_time_s(1500)
        t2 = small_pool.transfer_time_s(3000)
        assert t2 == pytest.approx(2 * t1)

    def test_x8_link_transfer_time(self, small_pool):
        # 32 GB/s * 0.92 efficiency: 1500 B in ~51 ns.
        t = small_pool.transfer_time_s(1500)
        assert 30e-9 < t < 80e-9
