"""Tests for workload generators: traces, allocation, stranding, apps, echo."""

import numpy as np
import pytest

from repro.workloads.allocation import (
    DEFAULT_FAMILIES,
    generate_allocation_trace,
)
from repro.workloads.apps import APP_PROFILES, AppProfile
from repro.workloads.echo import EchoStats
from repro.workloads.stranding import (
    UsageTimeline,
    pooled_stranding,
    schedule_trace,
    stranded_fractions,
)
from repro.workloads.traces import (
    RACK_A_PARAMS,
    RACK_B_PARAMS,
    PacketTrace,
    TraceParams,
    generate_trace,
)


class TestPacketTraces:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(RACK_A_PARAMS[0], np.random.default_rng(1000))

    def test_times_sorted_and_in_range(self, trace):
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times.min() >= 0
        assert trace.times.max() < trace.duration_s

    def test_burstiness_shape(self, trace):
        """The §2.2 signature: tiny P99, large P99.99."""
        p99 = trace.utilization_percentile(99)
        p9999 = trace.utilization_percentile(99.99)
        assert p99 < 0.05
        assert p9999 > 0.15
        assert p9999 > 5 * p99

    def test_mean_utilization_low(self, trace):
        assert trace.mean_utilization < 0.02

    def test_rack_b_hotter_than_rack_a(self):
        a = generate_trace(RACK_A_PARAMS[1], np.random.default_rng(1))
        b = generate_trace(RACK_B_PARAMS[1], np.random.default_rng(1))
        assert b.utilization_percentile(99.99) > a.utilization_percentile(99.99)

    def test_aggregate_merges_sorted(self):
        traces = [generate_trace(RACK_A_PARAMS[i], np.random.default_rng(i))
                  for i in range(2)]
        agg = PacketTrace.aggregate(traces)
        assert len(agg.times) == sum(len(t.times) for t in traces)
        assert np.all(np.diff(agg.times) >= 0)

    def test_scaled_thins_packets(self, trace):
        thin = trace.scaled(0.5)
        assert 0.3 < len(thin.times) / len(trace.times) < 0.7

    def test_deterministic_given_seed(self):
        a = generate_trace(RACK_A_PARAMS[0], np.random.default_rng(5))
        b = generate_trace(RACK_A_PARAMS[0], np.random.default_rng(5))
        assert np.array_equal(a.times, b.times)

    def test_short_duration_respected(self):
        params = TraceParams(duration_s=0.05)
        trace = generate_trace(params, np.random.default_rng(0))
        assert trace.times.max() < 0.05


class TestAllocationTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_allocation_trace(n_instances=800,
                                         rng=np.random.default_rng(7))

    def test_instances_have_positive_demands(self, trace):
        for inst in trace.instances:
            assert inst.cores > 0
            assert inst.memory_gb > 0
            assert inst.nic_gbps > 0
            assert inst.ssd_tb > 0
            assert inst.depart_s > inst.arrive_s

    def test_family_mix_present(self, trace):
        families = {i.family for i in trace.instances}
        assert families == {f.name for f in DEFAULT_FAMILIES}

    def test_scheduler_respects_capacity(self, trace):
        """At no point may any host exceed any resource dimension."""
        n_hosts = 24
        schedule_trace(trace, n_hosts)
        timeline = UsageTimeline.build(trace, n_hosts)
        peak = timeline.usage.max(axis=0)   # (hosts, resources)
        for h in range(n_hosts):
            assert np.all(peak[h] <= trace.host_capacity + 1e-6)

    def test_unplaceable_instances_left_unassigned(self):
        trace = generate_allocation_trace(n_instances=500,
                                          rng=np.random.default_rng(3))
        placed = schedule_trace(trace, n_hosts=2)   # tiny cluster
        assert placed < 500
        assert any(i.host is None for i in trace.instances)


class TestStranding:
    @pytest.fixture(scope="class")
    def scheduled(self):
        trace = generate_allocation_trace(n_instances=2500,
                                          rng=np.random.default_rng(7))
        schedule_trace(trace, 32)
        return trace

    def test_nic_and_ssd_strand_more_than_cores(self, scheduled):
        """The §2.2 finding that motivates pooling."""
        fractions = stranded_fractions(scheduled, 32)
        assert fractions["nic_gbps"] > fractions["cores"]
        assert fractions["ssd_tb"] > fractions["cores"]

    def test_stranding_in_paper_band(self, scheduled):
        fractions = stranded_fractions(scheduled, 32)
        assert 0.15 <= fractions["nic_gbps"] <= 0.40   # paper: 27 %
        assert 0.20 <= fractions["ssd_tb"] <= 0.45     # paper: 33 %

    def test_pooling_reduces_stranding(self, scheduled):
        rows = pooled_stranding(scheduled, 32, [1, 8], "ssd_tb", 4.0,
                                rng=np.random.default_rng(1))
        assert rows[1].stranded_fraction < rows[0].stranded_fraction
        assert rows[1].devices_needed < rows[0].devices_needed

    def test_pod_of_one_is_baseline_config(self, scheduled):
        rows = pooled_stranding(scheduled, 32, [1], "nic_gbps", 100.0,
                                rng=np.random.default_rng(1))
        assert rows[0].devices_needed == 32
        assert rows[0].saved_fraction == pytest.approx(0.0)

    def test_saved_fraction_consistent(self, scheduled):
        rows = pooled_stranding(scheduled, 32, [8], "ssd_tb", 4.0,
                                rng=np.random.default_rng(1))
        row = rows[0]
        assert row.saved_fraction == pytest.approx(
            1.0 - row.devices_needed / row.devices_baseline, abs=0.01
        )


class TestAppProfiles:
    def test_all_paper_apps_present(self):
        assert set(APP_PROFILES) == {
            "python-http", "rocket", "nginx", "tomcat", "memcached",
        }

    def test_python_slowest_nginx_fastest_web_app(self):
        assert APP_PROFILES["python-http"].service_mean_us > \
            APP_PROFILES["tomcat"].service_mean_us > \
            APP_PROFILES["nginx"].service_mean_us

    def test_service_samples_near_mean(self, rng):
        profile = APP_PROFILES["nginx"]
        samples = [profile.sample_service_us(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(profile.service_mean_us,
                                                 rel=0.1)
        assert min(samples) > 0


class TestEchoStats:
    def test_loss_timeline_attributes_by_send_bin(self):
        stats = EchoStats()
        stats.sent = 3
        stats.send_times = [0.05, 0.15, 0.25]
        stats._received_seqs = {0, 2}
        timeline = stats.loss_timeline(0.1, 0.3)
        assert list(timeline) == [0, 1, 0]

    def test_percentile_empty_is_nan(self):
        stats = EchoStats()
        assert np.isnan(stats.percentile_us(50))
