"""Unit tests for the pod-wide allocator pieces: leases, telemetry, policy."""

import pytest

from repro.core.allocator.leases import Lease, LeaseTable
from repro.core.allocator.policy import DeviceState, PlacementPolicy
from repro.core.allocator.telemetry import TelemetryStore
from repro.errors import AllocationError, LeaseError


class TestLeases:
    def test_grant_and_validity(self):
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant(1, "nic0", now=0.0)
        assert lease.valid(0.5)
        assert not lease.valid(1.5)

    def test_double_grant_rejected(self):
        table = LeaseTable(ttl_s=1.0)
        table.grant(1, "nic0", now=0.0)
        with pytest.raises(LeaseError):
            table.grant(1, "nic0", now=0.1)

    def test_expired_lease_can_be_regranted(self):
        table = LeaseTable(ttl_s=1.0)
        table.grant(1, "nic0", now=0.0)
        table.grant(1, "nic0", now=5.0)   # old one expired

    def test_renew_extends(self):
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant(1, "nic0", now=0.0)
        lease.renew(0.9)
        assert lease.valid(1.5)

    def test_renew_revoked_raises(self):
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant(1, "nic0", now=0.0)
        table.revoke(1, "nic0")
        with pytest.raises(LeaseError):
            lease.renew(0.5)

    def test_revoke_device_returns_affected(self):
        table = LeaseTable(ttl_s=10.0)
        table.grant(1, "nic0", now=0.0)
        table.grant(2, "nic0", now=0.0)
        table.grant(3, "nic1", now=0.0)
        revoked = table.revoke_device("nic0")
        assert sorted(l.instance_ip for l in revoked) == [1, 2]
        assert len(table) == 1

    def test_renew_device(self):
        table = LeaseTable(ttl_s=1.0)
        table.grant(1, "nic0", now=0.0)
        table.grant(2, "nic0", now=0.0)
        assert table.renew_device("nic0", now=0.9) == 2

    def test_expired_listing(self):
        table = LeaseTable(ttl_s=1.0)
        table.grant(1, "nic0", now=0.0)
        table.grant(2, "nic1", now=5.0)
        expired = table.expired(now=2.0)
        assert [l.instance_ip for l in expired] == [1]

    def test_grant_over_expired_replaces_entry(self):
        table = LeaseTable(ttl_s=1.0)
        old = table.grant(1, "nic0", now=0.0)
        new = table.grant(1, "nic0", now=5.0)
        assert table.get(1, "nic0") is new
        assert new is not old

    def test_expired_lease_is_invalid_but_unrevoked(self):
        """Expiry and revocation are distinct: the sweep turns the former
        into the latter; consumers must check ``valid``, not ``revoked``."""
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant(1, "nic0", now=0.0)
        assert not lease.valid(2.0)
        assert not lease.revoked

    def test_revoking_expired_leases_empties_sweep_listing(self):
        """The sweep's contract: revoke everything ``expired`` returns and
        the listing drains."""
        table = LeaseTable(ttl_s=1.0)
        table.grant(1, "nic0", now=0.0)
        table.grant(2, "nic1", now=0.0)
        for lease in table.expired(now=2.0):
            table.revoke(lease.instance_ip, lease.device)
        assert table.expired(now=2.0) == []
        assert len(table) == 0

    def test_grant_carries_epoch(self):
        table = LeaseTable(ttl_s=1.0)
        lease = table.grant(1, "nic0", now=0.0, epoch=7)
        assert lease.epoch == 7


class TestTelemetryStore:
    def _record(self, nic="nic0", host="h0", t=0.0, bw=1e9):
        return {"nic": nic, "host": host, "time": t, "tx_bw": bw, "rx_bw": 0.0}

    def test_latest_and_load(self):
        store = TelemetryStore(interval_s=0.1)
        store.ingest(self._record(bw=2e9))
        assert store.load_of("nic0") == 2e9
        assert store.load_of("unknown") == 0.0

    def test_host_alive_within_threshold(self):
        store = TelemetryStore(interval_s=0.1, missed_threshold=3)
        store.ingest(self._record(t=1.0))
        assert store.host_alive("h0", now=1.25)
        assert not store.host_alive("h0", now=1.5)

    def test_never_reported_host_assumed_alive(self):
        store = TelemetryStore(interval_s=0.1)
        assert store.host_alive("mystery", now=100.0)

    def test_dead_hosts_listing(self):
        store = TelemetryStore(interval_s=0.1, missed_threshold=3)
        store.ingest(self._record(host="h0", t=0.0))
        store.ingest(self._record(nic="nic1", host="h1", t=1.0))
        assert store.dead_hosts(now=1.05) == ["h0"]


class TestPlacementPolicy:
    def _devices(self):
        return {
            "local": DeviceState("local", host="h0", capacity=100.0),
            "remote-idle": DeviceState("remote-idle", host="h1", capacity=100.0),
            "remote-busy": DeviceState("remote-busy", host="h2", capacity=100.0,
                                       allocated=80.0),
            "backup": DeviceState("backup", host="h3", capacity=100.0,
                                  is_backup=True),
        }

    def test_local_first(self):
        policy = PlacementPolicy()
        chosen = policy.choose(self._devices(), host="h0", demand=10.0)
        assert chosen.name == "local"

    def test_least_loaded_remote_when_no_local(self):
        policy = PlacementPolicy()
        devices = self._devices()
        devices["local"].allocated = 20.0   # break the tie: remote-idle wins
        chosen = policy.choose(devices, host="h9", demand=10.0)
        assert chosen.name == "remote-idle"

    def test_backup_excluded_for_remote_hosts(self):
        policy = PlacementPolicy()
        devices = {"backup": DeviceState("backup", host="h3", capacity=100.0,
                                         is_backup=True)}
        with pytest.raises(AllocationError):
            policy.choose(devices, host="h9", demand=1.0)

    def test_backup_usable_locally(self):
        policy = PlacementPolicy()
        devices = {"backup": DeviceState("backup", host="h3", capacity=100.0,
                                         is_backup=True)}
        assert policy.choose(devices, host="h3", demand=1.0).name == "backup"

    def test_failed_devices_skipped(self):
        policy = PlacementPolicy()
        devices = self._devices()
        devices["local"].failed = True
        chosen = policy.choose(devices, host="h0", demand=10.0)
        assert chosen.name == "remote-idle"

    def test_capacity_respected_without_oversubscription(self):
        policy = PlacementPolicy(allow_oversubscription=1.0)
        devices = {"only": DeviceState("only", host="h0", capacity=100.0,
                                       allocated=95.0)}
        with pytest.raises(AllocationError):
            policy.choose(devices, host="h0", demand=10.0)

    def test_oversubscription_allows_overcommit(self):
        policy = PlacementPolicy(allow_oversubscription=2.0)
        devices = {"only": DeviceState("only", host="h0", capacity=100.0,
                                       allocated=95.0)}
        assert policy.choose(devices, host="h0", demand=50.0).name == "only"

    def test_choose_backup_prefers_designated(self):
        policy = PlacementPolicy()
        backup = policy.choose_backup(self._devices(), exclude="local")
        assert backup.name == "backup"

    def test_choose_backup_falls_back_to_least_loaded(self):
        policy = PlacementPolicy()
        devices = self._devices()
        del devices["backup"]
        backup = policy.choose_backup(devices, exclude="local")
        assert backup.name == "remote-idle"

    def test_choose_backup_none_when_all_failed(self):
        policy = PlacementPolicy()
        devices = {"d": DeviceState("d", host="h0", capacity=1.0, failed=True)}
        assert policy.choose_backup(devices) is None
