"""Chaos testing: random control-plane operation sequences.

Hypothesis drives random interleavings of instance launches, NIC failures,
migrations, rebalances and time advancement against a live pod, then checks
the control plane's global invariants: every live instance has a healthy
NIC and a valid lease, allocated bandwidth accounting is non-negative and
conserved, and the datapath still moves packets afterwards.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pod import CXLPod
from repro.errors import AllocationError
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer

Op = st.one_of(
    st.tuples(st.just("launch"), st.integers(0, 3)),       # host index
    st.tuples(st.just("fail_nic"), st.integers(0, 2)),     # nic index
    st.tuples(st.just("migrate"), st.integers(0, 15)),     # instance index
    st.tuples(st.just("rebalance"), st.just(0)),
    st.tuples(st.just("advance"), st.integers(1, 30)),     # x10 ms
)


def build_pod():
    pod = CXLPod(mode="oasis")
    hosts = [pod.add_host() for _ in range(4)]
    nics = [pod.add_nic(hosts[i]) for i in range(3)]
    pod.add_nic(hosts[3], is_backup=True)
    return pod, hosts, nics


class TestControlPlaneChaos:
    @given(st.lists(Op, min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_under_random_operations(self, ops):
        pod, hosts, nics = build_pod()
        launched = []
        next_ip = 1
        for op, arg in ops:
            if op == "launch":
                ip = make_ip(10, 0, 0, next_ip)
                next_ip += 1
                try:
                    pod.add_instance(hosts[arg], ip=ip)
                    launched.append(ip)
                except AllocationError:
                    pass   # no healthy device left: acceptable refusal
            elif op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                # Keep at least one healthy device so failover can succeed.
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op == "migrate" and launched:
                ip = launched[arg % len(launched)]
                targets = [d.name for d in pod.allocator.devices.values()
                           if not d.failed and not d.is_backup]
                if targets:
                    target = targets[arg % len(targets)]
                    if pod.allocator.assignments.get(ip) != target:
                        pod.allocator.migrate(ip, target)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
            elif op == "advance":
                pod.run(arg * 0.01)
        pod.run(0.3)   # let any in-flight failover settle

        allocator = pod.allocator
        # 1. Every launched instance is assigned to a non-failed device
        #    with a valid lease.
        for ip in launched:
            nic_name = allocator.assignments.get(ip)
            assert nic_name is not None
            assert not allocator.devices[nic_name].failed
            lease = allocator.leases.get(ip, nic_name)
            assert lease is not None and not lease.revoked
        # 2. No leases on failed devices.
        for device in allocator.devices.values():
            if device.failed:
                assert allocator.leases.leases_on(device.name) == []
        # 3. Bandwidth accounting stayed sane.
        for device in allocator.devices.values():
            assert device.allocated >= -1e-9
        # 4. Frontend records agree with the allocator's map.
        for ip in launched:
            for frontend in pod.frontends.values():
                if ip in frontend._records:
                    record = frontend.record_of(ip)
                    assert record.primary.name == allocator.assignments[ip]
        pod.stop()

    @given(st.lists(Op, min_size=1, max_size=15), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_datapath_still_works_after_chaos(self, ops, seed):
        pod, hosts, nics = build_pod()
        ip = make_ip(10, 0, 0, 200)
        inst = pod.add_instance(hosts[0], ip=ip)
        EchoServer(pod.sim, inst)
        for op, arg in ops:
            if op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op == "advance":
                pod.run(arg * 0.01)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
        pod.run(0.3)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        echo = EchoClient(pod.sim, client, ip, rate_pps=2000)
        echo.start(0.05)
        pod.run(0.1)
        assert echo.stats.received > 0.9 * echo.stats.sent
        pod.stop()
