"""Chaos testing: random control- and data-plane operation sequences.

Hypothesis drives random interleavings of instance launches, NIC failures,
migrations, rebalances, data-plane faults (CXL link spikes, lost cacheline
writebacks, SSD media errors, switch frame drops) and time advancement
against a live pod, then checks the control plane's global invariants:
every live instance has a healthy NIC and a valid lease, allocated
bandwidth accounting is non-negative and conserved, and the datapath still
moves packets afterwards.

``CHAOS_MAX_EXAMPLES`` scales the search effort (raised in the nightly
chaos CI job).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pod import CXLPod
from repro.errors import AllocationError
from repro.faults import FaultPlan
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer
from repro.workloads.openloop import OpenLoopBlockClient

MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "25"))

Op = st.one_of(
    st.tuples(st.just("launch"), st.integers(0, 3)),       # host index
    st.tuples(st.just("fail_nic"), st.integers(0, 2)),     # nic index
    st.tuples(st.just("migrate"), st.integers(0, 15)),     # instance index
    st.tuples(st.just("rebalance"), st.just(0)),
    st.tuples(st.just("link_spike"), st.integers(0, 3)),   # host index
    st.tuples(st.just("wb_loss"), st.integers(0, 3)),      # host index
    st.tuples(st.just("ssd_media"), st.integers(1, 2)),    # armed count
    st.tuples(st.just("switch_drop"), st.integers(1, 2)),  # armed count
    st.tuples(st.just("overload_surge"), st.integers(12, 20)),  # x0.1 factor
    st.tuples(st.just("advance"), st.integers(1, 30)),     # x10 ms
    # Control-plane faults: crash the allocator leader (it restarts 200 ms
    # later), delay one host's notifications, renew leases, or re-deliver a
    # failure report (possibly a false positive).
    st.tuples(st.just("leader_crash"), st.just(0)),
    st.tuples(st.just("notify_delay"), st.integers(0, 3)),  # host index
    st.tuples(st.just("renew"), st.integers(0, 3)),         # host index
    st.tuples(st.just("dup_report"), st.integers(0, 2)),    # nic index
)

CONTROL_OPS = ("leader_crash", "notify_delay", "renew", "dup_report")


def build_pod():
    pod = CXLPod(mode="oasis")
    hosts = [pod.add_host() for _ in range(4)]
    nics = [pod.add_nic(hosts[i]) for i in range(3)]
    pod.add_nic(hosts[3], is_backup=True)
    ssd = pod.add_ssd(hosts[0])
    pod.enable_raft(replicas=3)
    pod.allocator.start_lease_sweeper()
    return pod, hosts, nics, ssd


def apply_control_plane_fault(pod, hosts, nics, op, arg):
    """Shared handler for the control-plane ops in the alphabet."""
    allocator = pod.allocator
    if op == "leader_crash":
        leader = allocator.leader_node()
        if leader is not None:
            leader.crash()
            pod.sim.schedule(0.2, leader.restart)
    elif op == "notify_delay":
        host = hosts[arg]
        allocator.notify.delay_extra(host.name, 0.05)
        pod.sim.schedule(0.1, allocator.notify.clear_delay, host.name)
    elif op == "renew":
        ips = [ip for ip, host in allocator.state.hosts.items()
               if host == hosts[arg].name]
        allocator.on_frontend_telemetry(
            {"host": hosts[arg].name, "ips": ips, "time": pod.sim.now})
    elif op == "dup_report":
        nic = nics[arg]
        healthy = [d for d in allocator.devices.values() if not d.failed]
        # A report against a healthy NIC is a false positive (still a
        # legitimate failover); keep one healthy device as a target.
        if allocator.devices[nic.name].failed or len(healthy) > 1:
            allocator.on_failure_report(nic.name)


def settle(pod, rounds=12):
    """Run until the replicated allocator has an elected leader and no
    queued commands (bounded; only deterministic sim time advances)."""
    for _ in range(rounds):
        if (pod.allocator.leader_node() is not None
                and pod.allocator.pending_commands == 0):
            return
        pod.run(0.25)


def apply_overload_surge(pod, hosts, ssd, arg):
    """``overload.surge`` from the chaos alphabet: lazily attach an
    open-loop block client to the pooled SSD on first use, then multiply
    its offered rate by ``arg / 10`` for 50 ms (the fault's shape)."""
    client = getattr(pod, "_chaos_openloop", None)
    if client is None:
        try:
            inst = pod.add_instance(hosts[0], ip=make_ip(10, 0, 7, 7))
        except AllocationError:
            return   # no healthy NIC to place the instance: surge is moot
        device = pod.add_block_device(inst, ssd)
        client = OpenLoopBlockClient(
            pod.sim, device, rate_iops=2000.0,
            rng=pod.rng.get("chaos/openloop"), name="chaos-openloop")
        pod.register_load_source(client)
        client.start(10.0)
        pod._chaos_openloop = client
    factor = arg / 10.0
    for source in pod._load_sources:
        source.set_rate_multiplier(factor)

    def recover():
        for source in pod._load_sources:
            source.set_rate_multiplier(1.0)

    pod.sim.schedule(0.05, recover)


def assert_shed_conservation(pod):
    """Nothing vanishes at a storage frontend: every submission is an ok
    completion, an error completion, a shed, or still pending."""
    for frontend in pod.storage_frontends.values():
        accounted = (frontend.completed_ok + frontend.completed_error
                     + frontend.shed + len(frontend._pending))
        assert frontend.submitted == accounted, frontend.name


def apply_data_plane_fault(pod, hosts, ssd, op, arg):
    """Shared handler for the data-plane ops in the alphabet."""
    if op == "link_spike":
        host = hosts[arg]
        pod.pool.set_link_fault(host.name, derate=4.0)
        pod.sim.schedule(0.01, pod.pool.clear_link_fault, host.name)
    elif op == "wb_loss":
        hosts[arg].shared.cache.inject_writeback_fault(count=1)
    elif op == "ssd_media":
        ssd.inject_media_error(arg)
    elif op == "switch_drop":
        pod.switch.inject_drop(arg)


class TestControlPlaneChaos:
    @given(st.lists(Op, min_size=1, max_size=25))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_under_random_operations(self, ops):
        pod, hosts, nics, ssd = build_pod()
        launched = []
        next_ip = 1
        for op, arg in ops:
            if op == "launch":
                ip = make_ip(10, 0, 0, next_ip)
                next_ip += 1
                try:
                    pod.add_instance(hosts[arg], ip=ip)
                    launched.append(ip)
                except AllocationError:
                    pass   # no healthy device left: acceptable refusal
            elif op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                # Keep at least one healthy device so failover can succeed.
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op == "migrate" and launched:
                ip = launched[arg % len(launched)]
                targets = [d.name for d in pod.allocator.devices.values()
                           if not d.failed and not d.is_backup]
                if targets:
                    target = targets[arg % len(targets)]
                    if pod.allocator.assignments.get(ip) != target:
                        pod.allocator.migrate(ip, target)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
            elif op in ("link_spike", "wb_loss", "ssd_media", "switch_drop"):
                apply_data_plane_fault(pod, hosts, ssd, op, arg)
            elif op == "overload_surge":
                apply_overload_surge(pod, hosts, ssd, arg)
            elif op in CONTROL_OPS:
                apply_control_plane_fault(pod, hosts, nics, op, arg)
            elif op == "advance":
                pod.run(arg * 0.01)
        pod.run(0.3)   # let any in-flight failover settle
        settle(pod)    # ...and the replicated command queue drain
        assert_shed_conservation(pod)

        allocator = pod.allocator
        # 1. Every launched instance is assigned to a non-failed device
        #    with a valid lease.
        for ip in launched:
            nic_name = allocator.assignments.get(ip)
            assert nic_name is not None
            assert not allocator.devices[nic_name].failed
            lease = allocator.leases.get(ip, nic_name)
            assert lease is not None and not lease.revoked
        # 2. No leases on failed devices.
        for device in allocator.devices.values():
            if device.failed:
                assert allocator.leases.leases_on(device.name) == []
        # 3. Bandwidth accounting stayed sane.
        for device in allocator.devices.values():
            assert device.allocated >= -1e-9
        # 4. Frontend records agree with the allocator's map.
        for ip in launched:
            for frontend in pod.frontends.values():
                if ip in frontend._records:
                    record = frontend.record_of(ip)
                    assert record.primary.name == allocator.assignments[ip]
        pod.stop()

    @given(st.lists(Op, min_size=1, max_size=15), st.integers(0, 1000))
    @settings(max_examples=max(10, MAX_EXAMPLES // 2), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_datapath_still_works_after_chaos(self, ops, seed):
        pod, hosts, nics, ssd = build_pod()
        ip = make_ip(10, 0, 0, 200)
        inst = pod.add_instance(hosts[0], ip=ip)
        EchoServer(pod.sim, inst)
        for op, arg in ops:
            if op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op in ("link_spike", "wb_loss", "ssd_media", "switch_drop"):
                apply_data_plane_fault(pod, hosts, ssd, op, arg)
            elif op == "overload_surge":
                apply_overload_surge(pod, hosts, ssd, arg)
            elif op == "advance":
                pod.run(arg * 0.01)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
        pod.run(0.3)
        settle(pod)   # drain any commit-gated failover before measuring
        assert_shed_conservation(pod)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        echo = EchoClient(pod.sim, client, ip, rate_pps=2000)
        # Faults armed during the op phase but not yet consumed will eat
        # echo frames -- budget for them instead of hiding them.
        armed = pod.switch._drop_next
        for host in hosts:
            fault = host.shared.cache._wb_fault
            if fault is not None:
                armed += fault["count"]
        echo.start(0.05)
        pod.run(0.1)
        assert echo.stats.received >= 0.9 * echo.stats.sent - armed
        pod.stop()

    @given(st.lists(Op, min_size=1, max_size=20))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_valid_holder_under_interleavings(self, ops):
        """Property: however failovers, migrations, renewals, expiries,
        leader crashes and duplicate reports interleave, no instance ever
        ends up holding more than one valid NIC lease -- and any valid
        lease it holds is on its currently assigned device."""
        pod, hosts, nics, ssd = build_pod()
        launched = []
        next_ip = 1
        for op, arg in ops:
            if op == "launch":
                ip = make_ip(10, 0, 0, next_ip)
                next_ip += 1
                try:
                    pod.add_instance(hosts[arg], ip=ip)
                    launched.append(ip)
                except AllocationError:
                    pass
            elif op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op == "migrate" and launched:
                ip = launched[arg % len(launched)]
                targets = [d.name for d in pod.allocator.devices.values()
                           if not d.failed and not d.is_backup]
                if targets:
                    target = targets[arg % len(targets)]
                    if pod.allocator.assignments.get(ip) != target:
                        pod.allocator.migrate(ip, target)
            elif op in CONTROL_OPS:
                apply_control_plane_fault(pod, hosts, nics, op, arg)
            elif op == "advance":
                pod.run(arg * 0.01)
        pod.run(0.3)
        settle(pod)

        allocator = pod.allocator
        now = pod.sim.now
        for ip in launched:
            holders = [dev for (lip, dev), lease
                       in allocator.leases._by_key.items()
                       if lip == ip and dev in allocator.devices
                       and lease.valid(now)]
            assert len(holders) <= 1
            assigned = allocator.assignments.get(ip)
            assert set(holders) <= {assigned}
        pod.stop()


class TestControlFailoverPlan:
    def test_control_plan_is_deterministic_and_exactly_once(self):
        """Acceptance: the built-in ``control-failover`` plan (leader crash
        mid-failover + delayed victim notifications + duplicate reports)
        completes the failover exactly once, fences every stale post and
        replays byte-identically from the same root seed."""
        import json

        from repro.faults.chaos import CONTROL_PLAN, run_chaos

        def once():
            plan = FaultPlan.from_json(json.dumps(CONTROL_PLAN))
            return run_chaos(seed=11, plan=plan, duration_s=0.9,
                             verbose=False)

        first, second = once(), once()
        for result in (first, second):
            assert result["ok"], result["verdict"].render()
            assert result["recovery"]["allocator.failovers"] == 1
            assert result["recovery"]["allocator.pending_commands"] == 0
            fence_rejects = sum(v for k, v in result["recovery"].items()
                                if k.endswith(".fence_rejects"))
            stale = sum(v for k, v in result["recovery"].items()
                        if k.endswith(".stale_accepted"))
            assert fence_rejects >= 1
            assert stale == 0
            assert result["recovery"]["allocator.duplicate_reports"] >= 1
        assert first["events"] == second["events"]
        assert first["recovery"] == second["recovery"]
