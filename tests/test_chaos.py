"""Chaos testing: random control- and data-plane operation sequences.

Hypothesis drives random interleavings of instance launches, NIC failures,
migrations, rebalances, data-plane faults (CXL link spikes, lost cacheline
writebacks, SSD media errors, switch frame drops) and time advancement
against a live pod, then checks the control plane's global invariants:
every live instance has a healthy NIC and a valid lease, allocated
bandwidth accounting is non-negative and conserved, and the datapath still
moves packets afterwards.

``CHAOS_MAX_EXAMPLES`` scales the search effort (raised in the nightly
chaos CI job).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pod import CXLPod
from repro.errors import AllocationError
from repro.net.packet import make_ip
from repro.workloads.echo import EchoClient, EchoServer

MAX_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "25"))

Op = st.one_of(
    st.tuples(st.just("launch"), st.integers(0, 3)),       # host index
    st.tuples(st.just("fail_nic"), st.integers(0, 2)),     # nic index
    st.tuples(st.just("migrate"), st.integers(0, 15)),     # instance index
    st.tuples(st.just("rebalance"), st.just(0)),
    st.tuples(st.just("link_spike"), st.integers(0, 3)),   # host index
    st.tuples(st.just("wb_loss"), st.integers(0, 3)),      # host index
    st.tuples(st.just("ssd_media"), st.integers(1, 2)),    # armed count
    st.tuples(st.just("switch_drop"), st.integers(1, 2)),  # armed count
    st.tuples(st.just("advance"), st.integers(1, 30)),     # x10 ms
)


def build_pod():
    pod = CXLPod(mode="oasis")
    hosts = [pod.add_host() for _ in range(4)]
    nics = [pod.add_nic(hosts[i]) for i in range(3)]
    pod.add_nic(hosts[3], is_backup=True)
    ssd = pod.add_ssd(hosts[0])
    return pod, hosts, nics, ssd


def apply_data_plane_fault(pod, hosts, ssd, op, arg):
    """Shared handler for the data-plane ops in the alphabet."""
    if op == "link_spike":
        host = hosts[arg]
        pod.pool.set_link_fault(host.name, derate=4.0)
        pod.sim.schedule(0.01, pod.pool.clear_link_fault, host.name)
    elif op == "wb_loss":
        hosts[arg].shared.cache.inject_writeback_fault(count=1)
    elif op == "ssd_media":
        ssd.inject_media_error(arg)
    elif op == "switch_drop":
        pod.switch.inject_drop(arg)


class TestControlPlaneChaos:
    @given(st.lists(Op, min_size=1, max_size=25))
    @settings(max_examples=MAX_EXAMPLES, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_under_random_operations(self, ops):
        pod, hosts, nics, ssd = build_pod()
        launched = []
        next_ip = 1
        for op, arg in ops:
            if op == "launch":
                ip = make_ip(10, 0, 0, next_ip)
                next_ip += 1
                try:
                    pod.add_instance(hosts[arg], ip=ip)
                    launched.append(ip)
                except AllocationError:
                    pass   # no healthy device left: acceptable refusal
            elif op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                # Keep at least one healthy device so failover can succeed.
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op == "migrate" and launched:
                ip = launched[arg % len(launched)]
                targets = [d.name for d in pod.allocator.devices.values()
                           if not d.failed and not d.is_backup]
                if targets:
                    target = targets[arg % len(targets)]
                    if pod.allocator.assignments.get(ip) != target:
                        pod.allocator.migrate(ip, target)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
            elif op in ("link_spike", "wb_loss", "ssd_media", "switch_drop"):
                apply_data_plane_fault(pod, hosts, ssd, op, arg)
            elif op == "advance":
                pod.run(arg * 0.01)
        pod.run(0.3)   # let any in-flight failover settle

        allocator = pod.allocator
        # 1. Every launched instance is assigned to a non-failed device
        #    with a valid lease.
        for ip in launched:
            nic_name = allocator.assignments.get(ip)
            assert nic_name is not None
            assert not allocator.devices[nic_name].failed
            lease = allocator.leases.get(ip, nic_name)
            assert lease is not None and not lease.revoked
        # 2. No leases on failed devices.
        for device in allocator.devices.values():
            if device.failed:
                assert allocator.leases.leases_on(device.name) == []
        # 3. Bandwidth accounting stayed sane.
        for device in allocator.devices.values():
            assert device.allocated >= -1e-9
        # 4. Frontend records agree with the allocator's map.
        for ip in launched:
            for frontend in pod.frontends.values():
                if ip in frontend._records:
                    record = frontend.record_of(ip)
                    assert record.primary.name == allocator.assignments[ip]
        pod.stop()

    @given(st.lists(Op, min_size=1, max_size=15), st.integers(0, 1000))
    @settings(max_examples=max(10, MAX_EXAMPLES // 2), deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_datapath_still_works_after_chaos(self, ops, seed):
        pod, hosts, nics, ssd = build_pod()
        ip = make_ip(10, 0, 0, 200)
        inst = pod.add_instance(hosts[0], ip=ip)
        EchoServer(pod.sim, inst)
        for op, arg in ops:
            if op == "fail_nic":
                nic = nics[arg]
                healthy = [d for d in pod.allocator.devices.values()
                           if not d.failed]
                if not nic.failed and len(healthy) > 1:
                    nic.fail()
            elif op in ("link_spike", "wb_loss", "ssd_media", "switch_drop"):
                apply_data_plane_fault(pod, hosts, ssd, op, arg)
            elif op == "advance":
                pod.run(arg * 0.01)
            elif op == "rebalance":
                pod.allocator.rebalance_once()
        pod.run(0.3)
        client = pod.add_external_client(ip=make_ip(10, 0, 9, 1))
        echo = EchoClient(pod.sim, client, ip, rate_pps=2000)
        # Faults armed during the op phase but not yet consumed will eat
        # echo frames -- budget for them instead of hiding them.
        armed = pod.switch._drop_next
        for host in hosts:
            fault = host.shared.cache._wb_fault
            if fault is not None:
                armed += fault["count"]
        echo.start(0.05)
        pod.run(0.1)
        assert echo.stats.received >= 0.9 * echo.stats.sent - armed
        pod.stop()
