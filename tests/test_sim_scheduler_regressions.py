"""Regression tests for the event-kernel scheduler bugfixes.

Three seed bugs are pinned here, each with a test that fails on the
pre-rebuild kernel:

* :class:`~repro.sim.core.PeriodicTask` with ``jitter >= interval`` used to
  clamp overrun firings to zero delay, producing same-timestamp bursts that
  inflated the sample count; overrun base ticks are now skipped.
* :meth:`Process.interrupt` used to leave the interrupted process's pending
  sleep event live in the heap, so ``Simulator.pending`` (and the ``report``
  CLI's queue-depth line) over-counted forever.
* An auto-reset :class:`~repro.sim.core.Signal` used to wake *every* waiter
  per :meth:`set` and latch the payload unconditionally, so a later waiter
  could consume a stale value from an earlier, already-consumed set.

The doorbell audits at the bottom pin the semantics the three auto-reset
users (``sim.resources.SimQueue``, ``core.engine.Driver``'s work doorbell,
``core.raft.rpc``'s channel pump) rely on: one set == one wakeup, FIFO
waiter order, and a consumed latch never re-delivering its value.
"""

import numpy as np

from repro.sim.core import MSEC, USEC, Signal, Simulator


class TestPeriodicJitterOverrun:
    """``jitter >= interval``: firings may overrun the next base tick."""

    def _fire_times(self, jitter_ratio: float, seed: int = 0,
                    interval: float = 1 * MSEC, until: float = 400 * MSEC):
        sim = Simulator()
        times = []
        sim.every(interval, lambda: times.append(sim.now),
                  jitter=jitter_ratio * interval,
                  rng=np.random.default_rng(seed))
        sim.run(until=until)
        return times

    def test_no_same_timestamp_bursts(self):
        # Seed behaviour: an overrun firing was clamped to zero delay, so the
        # task fired repeatedly at one timestamp until the base caught up.
        times = self._fire_times(jitter_ratio=2.0)
        assert len(times) == len(set(times))
        for earlier, later in zip(times, times[1:]):
            assert later > earlier

    def test_overrun_ticks_are_skipped_not_burst(self):
        # With jitter = 2x interval the task may sample slower than nominal
        # (skipped ticks) but must never fire more often than the base
        # timeline allows.
        interval = 1 * MSEC
        until = 400 * MSEC
        times = self._fire_times(jitter_ratio=2.0, interval=interval,
                                 until=until)
        assert 0 < len(times) <= int(until / interval)

    def test_jitter_equal_to_interval_stays_ordered(self):
        for seed in range(5):
            times = self._fire_times(jitter_ratio=1.0, seed=seed)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_cancel_during_overrun_stops_cleanly(self):
        sim = Simulator()
        times = []
        task = sim.every(1 * MSEC, lambda: times.append(sim.now),
                         jitter=3 * MSEC, rng=np.random.default_rng(7))
        sim.run(until=10 * MSEC)
        task.cancel()
        fired = len(times)
        sim.run(until=100 * MSEC)
        assert len(times) == fired
        assert sim.pending == 0


class TestInterruptHeapLeak:
    """Interrupting a sleeping process must cancel its pending sleep timer."""

    def test_interrupt_sleeping_process_leaves_queue_empty(self, sim):
        def sleeper():
            yield 1.0

        proc = sim.spawn(sleeper())
        sim.run(until=1 * USEC)
        assert sim.pending == 1          # the pending sleep timer
        proc.interrupt()
        assert proc.done
        assert sim.pending == 0          # seed bug: stayed 1 forever

    def test_interrupted_timer_never_fires(self, sim):
        resumed = []

        def sleeper():
            yield 1 * MSEC
            resumed.append(sim.now)

        proc = sim.spawn(sleeper())
        sim.run(until=1 * USEC)
        proc.interrupt()
        before = sim.processed_events
        sim.run(until=10 * MSEC)
        assert resumed == []
        # The tombstoned timer is discarded by the dispatch loop without
        # being counted as a fired event.
        assert sim.processed_events == before

    def test_interrupt_while_waiting_on_signal(self, sim):
        signal = Signal(sim, auto_reset=True)

        def waiter():
            yield signal

        proc = sim.spawn(waiter())
        sim.run(until=1 * USEC)
        proc.interrupt()
        assert sim.pending == 0
        assert signal._waiters == []     # unsubscribed, not leaked

    def test_repeated_interrupts_do_not_underflow_live_count(self, sim):
        def sleeper():
            yield 1.0

        proc = sim.spawn(sleeper())
        sim.run(until=1 * USEC)
        proc.interrupt()
        proc.interrupt()
        assert sim.pending == 0

    def test_pending_matches_live_queue_entries(self, sim):
        """``pending`` counts live events only, not cancellation tombstones."""
        events = [sim.schedule(i * MSEC, lambda: None) for i in range(1, 6)]
        assert sim.pending == 5
        events[1].cancel()
        events[3].cancel()
        assert sim.pending == 3
        live = sum(1 for _, _, e in (sim._near + sim._far)
                   if not e.cancelled) + len(sim._now_q)
        assert live == 3


class TestAutoResetStaleValue:
    """Auto-reset signals deliver each set's payload at most once."""

    def test_consumed_latch_not_redelivered(self, sim):
        signal = Signal(sim, auto_reset=True)
        signal.set("a")
        got = []

        def first():
            got.append((yield signal))

        def second():
            got.append((yield signal))

        sim.spawn(first())
        sim.run_all()
        assert got == ["a"]
        assert not signal.is_set
        sim.spawn(second())
        sim.run_all()
        assert got == ["a"]             # seed bug: second also saw "a"
        signal.set("b")
        sim.run_all()
        assert got == ["a", "b"]

    def test_set_wakes_exactly_one_waiter_fifo(self, sim):
        signal = Signal(sim, auto_reset=True)
        woken = []

        def waiter(name):
            woken.append((name, (yield signal)))

        sim.spawn(waiter("first"))
        sim.spawn(waiter("second"))
        sim.run(until=1 * USEC)
        signal.set("x")
        sim.run_all()
        assert woken == [("first", "x")]   # seed bug: both woke
        signal.set("y")
        sim.run_all()
        assert woken == [("first", "x"), ("second", "y")]

    def test_latched_value_cleared_after_consumption(self, sim):
        signal = Signal(sim, auto_reset=True)
        signal.set("payload")

        def consumer():
            yield signal

        sim.spawn(consumer())
        sim.run_all()
        assert signal._value is None
        assert not signal.is_set

    def test_one_set_per_wakeup_under_burst(self, sim):
        """N sets with a waiter present wake it once each, never more."""
        signal = Signal(sim, auto_reset=True)
        wakes = []

        def waiter():
            while True:
                yield signal
                wakes.append(sim.now)

        sim.spawn(waiter())
        for k in range(1, 4):
            sim.schedule(k * USEC, signal.set)
        sim.run_all()
        assert len(wakes) == 3

    def test_level_triggered_signal_unchanged(self, sim):
        """The fix is scoped to auto-reset: plain signals still broadcast."""
        signal = Signal(sim)
        woken = []

        def waiter(name):
            woken.append((name, (yield signal)))

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.schedule(1 * USEC, signal.set, "v")
        sim.run_all()
        assert sorted(woken) == [("a", "v"), ("b", "v")]


class TestSimGauges:
    def test_bind_sim_exports_live_event_count(self, sim):
        from repro.obs.bindings import bind_sim
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        bind_sim(registry, sim)
        event = sim.schedule(1 * MSEC, lambda: None)
        sim.schedule(2 * MSEC, lambda: None)
        assert registry.value("sim_pending_events") == 2
        event.cancel()
        # Tombstones are excluded: the gauge reflects live events only.
        assert registry.value("sim_pending_events") == 1
        sim.run_all()
        assert registry.value("sim_pending_events") == 0
        assert registry.value("sim_processed_events") == 1


class TestDoorbellUsers:
    """Audit of the three auto-reset users against the pinned semantics."""

    def test_simqueue_burst_put_drains_fully(self, sim):
        # resources.SimQueue pairs the doorbell with a re-check loop, so a
        # single latched wakeup is enough to drain a burst of puts.
        from repro.sim.resources import SimQueue

        queue = SimQueue(sim)
        got = []

        def consumer():
            while True:
                item = yield from queue.get()
                got.append(item)

        sim.spawn(consumer())
        sim.run(until=1 * USEC)
        for item in ("a", "b", "c"):
            queue.put_nowait(item)
        sim.run_all()
        assert got == ["a", "b", "c"]

    def test_simqueue_two_consumers_no_duplicate_delivery(self, sim):
        # Single-wake doorbell: each put wakes one consumer, so every item
        # is delivered exactly once even with competing getters.
        from repro.sim.resources import SimQueue

        queue = SimQueue(sim)
        got = []

        def consumer(name):
            while True:
                item = yield from queue.get()
                got.append((name, item))

        sim.spawn(consumer("x"))
        sim.spawn(consumer("y"))
        sim.run(until=1 * USEC)
        for item in range(6):
            sim.schedule(item * USEC, queue.put_nowait, item)
        sim.run_all()
        assert sorted(item for _, item in got) == list(range(6))

    def test_driver_doorbell_one_wakeup_per_park(self, sim):
        # engine.Driver: rings while parked wake once; rings while busy
        # latch exactly one further wakeup (drained work is not re-woken).
        from repro.core.engine import Driver

        class OneShot(Driver):
            def __init__(self, sim):
                super().__init__(sim, "oneshot")
                self.items = 0
                self.processed = 0

            def _process(self):
                n, self.items = self.items, 0
                self.processed += n
                return n, 100.0 * n

        driver = OneShot(sim)
        driver.start()
        sim.run(until=1 * USEC)
        driver.items = 3
        driver.kick()
        driver.kick()                    # second ring while wakeup pending
        sim.run(until=1 * MSEC)
        assert driver.processed == 3
        # One productive wakeup plus at most one latched-kick idle pass --
        # the double ring must not schedule unbounded wakeups.
        assert driver.wakeups <= 2

    def test_raft_pump_drains_channel_per_ring(self, sim):
        # raft.rpc's channel pump relies on one ring per drain pass; the
        # full stack is exercised via a pod-level raft round-trip.
        from repro.config import OasisConfig
        from repro.core.pod import CXLPod

        pod = CXLPod(config=OasisConfig().with_(seed=3), mode="oasis")
        for _ in range(3):
            pod.add_host()
        pod.enable_raft(replicas=3)
        pod.run(0.5)
        leaders = [n for n in pod.raft_nodes if n.state == "leader"]
        assert len(leaders) == 1
        pod.stop()
