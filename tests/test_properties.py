"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.designs import make_receiver
from repro.channel.protocol import ChannelSender
from repro.channel.ring import RingLayout, decode_slot, encode_slot
from repro.core.raft.log import LogEntry, RaftLog
from repro.errors import MemoryFault
from repro.mem.cache import HostCache
from repro.mem.cxl import CXLMemoryPool
from repro.mem.layout import FixedPool, Region, RegionAllocator, align_up
from repro.net.packet import Frame

slow = settings(max_examples=50,
                suppress_health_check=[HealthCheck.too_slow])


class TestRegionAllocatorProperties:
    @given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1,
                    max_size=40))
    @slow
    def test_no_overlap_and_conservation(self, sizes):
        alloc = RegionAllocator(Region(0, 1 << 20))
        total = alloc.free_bytes
        regions = []
        for size in sizes:
            regions.append(alloc.alloc(size))
        spans = sorted((r.base, r.base + align_up(r.size, 64)) for r in regions)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0, "allocations overlap"
        assert alloc.free_bytes + alloc.allocated_bytes == total
        for r in regions:
            alloc.free(r)
        assert alloc.free_bytes == total

    @given(st.lists(st.tuples(st.integers(1, 1024), st.booleans()),
                    min_size=1, max_size=60))
    @slow
    def test_interleaved_alloc_free_never_corrupts(self, ops):
        alloc = RegionAllocator(Region(0, 1 << 18))
        total = alloc.free_bytes
        live = []
        for size, do_free in ops:
            if do_free and live:
                alloc.free(live.pop())
            else:
                try:
                    live.append(alloc.alloc(size))
                except MemoryFault:
                    pass
        for r in live:
            alloc.free(r)
        assert alloc.free_bytes == total


class TestFixedPoolProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @slow
    def test_capacity_invariant(self, ops):
        pool = FixedPool(Region(0, 16384), 2048)
        live = []
        for do_alloc in ops:
            if do_alloc:
                addr = pool.alloc()
                if addr is not None:
                    live.append(addr)
            elif live:
                pool.free(live.pop())
            assert pool.available + pool.outstanding == pool.capacity
            assert len(set(live)) == len(live)   # no duplicate handouts


class TestEpochCodecProperties:
    @given(st.binary(min_size=16, max_size=16), st.integers(0, 1))
    @slow
    def test_roundtrip_any_payload(self, payload, epoch):
        payload = bytes([payload[0] & 0x7F]) + payload[1:]
        stamped = encode_slot(payload, epoch)
        got, got_epoch = decode_slot(stamped)
        assert got == payload
        assert got_epoch == epoch

    @given(st.integers(0, 1 << 20))
    @slow
    def test_expected_epoch_toggles_exactly_per_lap(self, seq):
        layout = RingLayout(
            Region(0, RingLayout.required_bytes(64, 16)), 64, 16)
        assert layout.expected_epoch(seq) != layout.expected_epoch(seq + 64)
        assert layout.expected_epoch(seq) == layout.expected_epoch(seq + 128)


class TestChannelFifoProperty:
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=30),
           st.sampled_from(["bypass-cache", "naive-prefetch",
                            "invalidate-consumed", "invalidate-prefetched"]))
    @slow
    def test_random_batches_preserve_fifo(self, batch_sizes, design):
        pool = CXLMemoryPool(size=1 << 20)
        layout = RingLayout(
            Region(0, RingLayout.required_bytes(64, 16)), 64, 16)
        sender = ChannelSender(layout, HostCache(pool, "s"))
        receiver = make_receiver(design, layout, HostCache(pool, "r"),
                                 counter_batch=8)
        sent = []
        received = []
        seq = 0
        for batch in batch_sizes:
            for _ in range(batch):
                payload = bytes([1]) + seq.to_bytes(8, "little") + bytes(7)
                ok, _ = sender.try_send(payload)
                if ok:
                    sent.append(payload)
                    seq += 1
            sender.flush()
            for _ in range(200):
                item, _ = receiver.poll()
                if item is None:
                    if len(received) == len(sent):
                        break
                else:
                    received.append(item)
        assert received == sent


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.binary(min_size=1,
                                                              max_size=80)),
                    min_size=1, max_size=30))
    @slow
    def test_read_your_writes_within_host(self, writes):
        pool = CXLMemoryPool(size=1 << 20)
        cache = HostCache(pool, "h")
        shadow = bytearray(2048)
        for addr, data in writes:
            cache.store(addr, data)
            shadow[addr:addr + len(data)] = data
        got, _ = cache.load(0, 2048)
        assert got == bytes(shadow)

    @given(st.lists(st.tuples(st.integers(0, 15), st.binary(min_size=64,
                                                            max_size=64)),
                    min_size=1, max_size=20))
    @slow
    def test_clwb_makes_pool_match_cache(self, line_writes):
        pool = CXLMemoryPool(size=1 << 20)
        cache = HostCache(pool, "h")
        for line, data in line_writes:
            cache.store(line * 64, data)
            cache.clwb(line * 64)
        for line, _ in line_writes:
            cached, _ = cache.load(line * 64, 64)
            assert pool.dma_read(line * 64, 64) == cached


class TestFrameProperties:
    @given(
        st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 48) - 1),
        st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1),
        st.integers(0, 255), st.integers(0, 65535), st.integers(0, 65535),
        st.integers(0, (1 << 32) - 1), st.binary(max_size=200),
    )
    @slow
    def test_pack_unpack_roundtrip(self, dst, src, sip, dip, proto, sport,
                                   dport, seq, payload):
        frame = Frame(dst_mac=dst, src_mac=src, src_ip=sip, dst_ip=dip,
                      proto=proto, src_port=sport, dst_port=dport, seq=seq,
                      payload=payload)
        out = Frame.unpack(frame.pack())
        assert (out.dst_mac, out.src_mac, out.src_ip, out.dst_ip) == \
            (dst, src, sip, dip)
        assert (out.proto, out.src_port, out.dst_port, out.seq) == \
            (proto, sport, dport, seq)
        assert out.payload == payload


class TestRaftLogProperties:
    @given(st.lists(st.tuples(st.integers(1, 5), st.integers(0, 100)),
                    min_size=1, max_size=30))
    @slow
    def test_merge_idempotent(self, raw_entries):
        entries = [LogEntry(t, c) for t, c in
                   sorted(raw_entries, key=lambda e: e[0])]
        log1 = RaftLog()
        log1.merge(0, entries)
        snapshot = [log1.entry(i) for i in range(1, log1.last_index + 1)]
        log1.merge(0, entries)
        assert [log1.entry(i) for i in range(1, log1.last_index + 1)] == snapshot

    @given(st.lists(st.integers(1, 5), min_size=2, max_size=20))
    @slow
    def test_terms_monotonic_after_sorted_merge(self, terms):
        entries = [LogEntry(t, i) for i, t in enumerate(sorted(terms))]
        log = RaftLog()
        log.merge(0, entries)
        observed = [log.term_at(i) for i in range(1, log.last_index + 1)]
        assert observed == sorted(observed)
