"""Tests for end-to-end flow tracing (repro.obs.flow / repro.obs.attribution).

The load-bearing property is the conservation invariant: every completed
flow's stage segments sum exactly to its end-to-end latency, on both the
network path (echo through the NIC) and the storage path (block I/O through
the SSD).  On top of that, the flow-derived per-stage attribution must agree
with Figure 11's differenced breakdown -- the messaging cost the paper infers
indirectly is the channel-stage time the flows measure directly.
"""

import json
import math

import numpy as np
import pytest

from repro.core.pod import CXLPod
from repro.experiments import fig11
from repro.experiments.common import SERVER_IP, build_echo_pod
from repro.net.packet import make_ip
from repro.obs.attribution import (
    FlowAttribution,
    SLOChecker,
    critical_path,
    render_waterfall,
)
from repro.obs.flow import NULL_FLOWS, FlowRegistry, FlowSegment
from repro.sim.core import Simulator, USEC
from repro.workloads.blockio import BlockWorkload
from repro.workloads.echo import EchoClient


def run_echo_flows(mode="oasis", duration_s=0.02, rate_pps=20_000.0,
                   packet_size=256, tracer_categories=None):
    pod, inst, client_ep, _ = build_echo_pod(mode, remote=(mode == "oasis"))
    pod.enable_flow_tracing()
    if tracer_categories is not None:
        pod.enable_tracing(categories=tracer_categories)
    client = EchoClient(pod.sim, client_ep, SERVER_IP,
                        packet_size=packet_size, rate_pps=rate_pps,
                        metrics=pod.metrics, flows=pod.flows)
    client.start(duration_s)
    pod.run(duration_s + 0.02)
    pod.stop()
    return pod, client


def run_blockio_flows(duration_s=0.02, rate_iops=10_000.0):
    pod = CXLPod(mode="oasis")
    h0 = pod.add_host()
    h1 = pod.add_host()
    pod.add_nic(h0)
    ssd = pod.add_ssd(h0)
    inst = pod.add_instance(h1, ip=make_ip(10, 0, 0, 1))
    device = pod.add_block_device(inst, ssd)
    pod.enable_flow_tracing()
    workload = BlockWorkload(pod.sim, device, rate_iops=rate_iops,
                             flows=pod.flows)
    workload.start(duration_s)
    pod.run(duration_s + 0.01)
    pod.stop()
    return pod, workload


class TestFlowPrimitives:
    def test_disabled_registry_is_inert(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=False)
        assert reg.start("echo") is None
        assert reg.started == 0
        assert reg.complete(None) is None
        assert len(reg) == 0

    def test_null_flows_shared_instance(self):
        assert NULL_FLOWS.start("echo") is None
        assert not NULL_FLOWS.enabled

    def test_segments_telescope_to_total(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=True)
        ctx = reg.start("t", stage="a")
        sim.schedule(1 * USEC, ctx.stage, "b")
        sim.schedule(3 * USEC, ctx.stage, "c")
        sim.schedule(7 * USEC, lambda: reg.complete(ctx))
        sim.run(until=10 * USEC)
        (record,) = reg.records
        assert [s.name for s in record.segments] == ["a", "b", "c"]
        assert [s.dur for s in record.segments] == pytest.approx(
            [1 * USEC, 2 * USEC, 4 * USEC])
        assert record.conservation_error_s() == 0.0
        assert record.total_us == pytest.approx(7.0)

    def test_stage_after_complete_is_ignored(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=True)
        ctx = reg.start("t")
        reg.complete(ctx)
        ctx.stage("late")
        assert reg.complete(ctx) is None          # double-complete is a no-op
        assert len(reg.records[0].segments) == 1

    def test_record_cap_drops_but_attribution_streams(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=True, max_records=2)
        for _ in range(5):
            reg.complete(reg.start("t"))
        assert len(reg.records) == 2
        assert reg.dropped_records == 3
        assert reg.completed == 5
        assert reg.attribution.flows == 5         # histograms saw every flow

    def test_stash_is_bounded(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=True, max_stash=4)
        ctxs = [reg.start("t") for _ in range(6)]
        for i, ctx in enumerate(ctxs):
            reg.stash(i, ctx)
        assert len(reg._stash) == 4
        assert reg.stash_evicted == 2
        assert reg.peek(0) is None                # oldest evicted first
        assert reg.pop(5) is ctxs[5]

    def test_queue_service_split(self):
        seg = FlowSegment("s", start=0.0, dur=4e-6, depth=3)
        assert seg.queue_s == pytest.approx(3e-6)
        assert seg.service_s == pytest.approx(1e-6)
        undepthed = FlowSegment("s", start=0.0, dur=4e-6)
        assert undepthed.queue_s == 0.0
        assert undepthed.service_s == pytest.approx(4e-6)


class TestEchoConservation:
    def test_conservation_and_stage_sequence(self):
        pod, client = run_echo_flows("oasis")
        flows = pod.flows
        assert flows.completed > 100
        assert flows.check_conservation() == []
        record = flows.records[0]
        names = [s.name for s in record.segments]
        # The full oasis datapath: client -> switch -> NIC -> backend ->
        # doorbell channel -> frontend -> app -> back out the same way.
        assert names == [
            "client.tx", "switch.wire", "nic.rx.dma", "be.rx", "chan.be2fe",
            "fe.rx", "app", "inst.tx", "fe.tx", "chan.fe2be", "be.tx",
            "nic.tx.dma", "switch.wire", "client.rx",
        ]

    def test_flow_p50_equals_rtt_p50(self):
        pod, client = run_echo_flows("oasis")
        rtt_p50 = float(np.percentile(
            np.asarray(client.rtt_hist.observations), 50))
        flow_p50 = pod.flows.attribution.total_percentile(50)
        assert flow_p50 == pytest.approx(rtt_p50, rel=1e-9)

    def test_disabled_flows_leave_no_trace(self):
        pod, inst, client_ep, _ = build_echo_pod("oasis", remote=True)
        client = EchoClient(pod.sim, client_ep, SERVER_IP,
                            packet_size=256, rate_pps=20_000.0,
                            metrics=pod.metrics, flows=pod.flows)
        client.start(0.01)
        pod.run(0.02)
        pod.stop()
        assert client.stats.received > 0
        assert pod.flows.started == 0
        assert len(pod.flows) == 0
        assert len(pod.flows._stash) == 0


class TestBlockioConservation:
    def test_conservation_and_stage_sequence(self):
        pod, workload = run_blockio_flows()
        flows = pod.flows
        assert flows.completed > 50
        assert workload.stats.errors == 0
        assert flows.check_conservation() == []
        record = flows.records[0]
        names = [s.name for s in record.segments]
        assert names == [
            "issue", "sfe.submit", "chan.sfe2sbe", "sbe.submit", "ssd.media",
            "sbe.comp", "chan.sbe2sfe", "sfe.comp",
        ]
        assert record.meta["op"] in ("read", "write")

    def test_ssd_media_dominates_critical_path(self):
        pod, workload = run_blockio_flows()
        for row in critical_path(pod.flows.records):
            assert row["dominant_stage"] == "ssd.media"
            assert row["dominant_share"] > 0.5


class TestFig11Attribution:
    def test_flow_attribution_matches_breakdown(self):
        results = fig11.run_attribution(duration_s=0.03)
        for mode in fig11.MODES:
            cell = results[mode]
            assert cell["conservation_violations"] == 0
            # Flow totals are the same samples as the RTT histogram.
            assert cell["flow_p50_us"] == pytest.approx(cell["rtt_p50_us"],
                                                        rel=1e-9)
        derived = results["derived"]
        # Paper: buffers ~free, messaging dominates -- and the flow-measured
        # channel-stage delta accounts for essentially all of the messaging
        # cost that Fig 11 infers by differencing mode p50s.
        assert derived["buffer_cost_us"] < 1.5
        assert derived["messaging_cost_us"] > derived["buffer_cost_us"]
        assert derived["channel_stage_delta_us"] == pytest.approx(
            derived["messaging_cost_us"], rel=0.15)

    def test_oasis_attribution_ranks_channels_first(self):
        pod, _ = run_echo_flows("oasis")
        table = pod.flows.attribution.table()
        top_stages = {row[0] for row in table[:2]}
        assert top_stages == {"chan.be2fe", "chan.fe2be"}
        # Doorbell visibility delay is ~2.8 us per hop.
        p50s = pod.flows.attribution.stage_p50s()
        assert p50s["chan.fe2be"] == pytest.approx(2.8, abs=0.5)
        assert p50s["chan.be2fe"] == pytest.approx(2.8, abs=0.5)


class TestAttributionTools:
    def _synthetic(self):
        sim = Simulator()
        reg = FlowRegistry(sim, enabled=True)
        for i in range(20):
            ctx = reg.start("t", stage="fast")
            dur = (10 + i) * USEC
            sim.schedule(dur, ctx.stage, "slow", 2)
            sim.schedule(dur * 3, lambda c=ctx: reg.complete(c))
        sim.run(until=1.0)
        return reg

    def test_slo_checker(self):
        reg = self._synthetic()
        clean = SLOChecker(total_us=1000.0)
        assert clean.check(reg.attribution) == []
        strict = SLOChecker(total_us=10.0, stage_us={"slow": 1.0,
                                                     "absent": 1.0})
        violations = strict.check(reg.attribution)
        assert {v.scope for v in violations} == {"total", "slow"}
        assert all(v.measured_us > v.limit_us for v in violations)
        assert "exceeds SLO" in str(violations[0])
        assert not SLOChecker().configured and strict.configured

    def test_critical_path_buckets(self):
        rows = critical_path(self._synthetic().records)
        assert rows
        for row in rows:
            assert row["dominant_stage"] == "slow"
            assert 0.5 < row["dominant_share"] <= 1.0
        # Tail buckets contain fewer flows than the body.
        assert rows[-1]["flows"] <= rows[0]["flows"]

    def test_waterfall_rendering(self):
        reg = self._synthetic()
        text = render_waterfall(reg.records[0])
        assert "fast" in text and "slow" in text
        assert "depth=2" in text
        assert "#" in text

    def test_percentile_edge_cases(self):
        att = FlowAttribution()
        assert math.isnan(att.total_percentile(50))
        assert math.isnan(att.percentile("nowhere", 50))
        reg = self._synthetic()
        single = reg.attribution.percentile("slow", 99)
        assert not math.isnan(single)


class TestPerfettoExport:
    def test_flow_arrows_in_chrome_trace(self, tmp_path):
        pod, _ = run_echo_flows("oasis", duration_s=0.005,
                                tracer_categories={"flow"})
        out = tmp_path / "flows.json"
        n = pod.tracer.export_chrome(str(out))
        assert n > 0
        events = json.loads(out.read_text())
        arrows = [e for e in events if e.get("ph") in ("s", "t", "f")]
        assert arrows
        by_id = {}
        for arrow in arrows:
            by_id.setdefault(arrow["id"], []).append(arrow)
        # Each flow draws one start, a chain of steps, one terminating end.
        steps = by_id[min(by_id)]
        assert [a["ph"] for a in steps][0] == "s"
        assert [a["ph"] for a in steps][-1] == "f"
        assert steps[-1]["bp"] == "e"
        assert all(a["ph"] == "t" for a in steps[1:-1])
        assert all(a["cat"] == "flow" for a in steps)
