"""Smoke tests: every experiment runs at reduced scale and reproduces the
paper's qualitative result (who wins, roughly by what factor)."""

import numpy as np
import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig6,
    fig8,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table2,
    table3,
)
from repro.workloads.apps import APP_PROFILES
from repro.experiments.fig8 import run_app


class TestFig2:
    @pytest.fixture(scope="class")
    def results(self):
        return fig2.run(n_instances=1500, n_hosts=24, pod_sizes=(1, 8))

    def test_baseline_stranding_ordering(self, results):
        base = results["baseline_stranded"]
        assert base["ssd_tb"] > base["cores"]
        assert base["nic_gbps"] > base["cores"]

    def test_pooling_reduces_devices(self, results):
        for key in ("nic", "ssd"):
            rows = results[key]
            assert rows[-1].devices_needed <= rows[0].devices_needed
            assert rows[-1].stranded_fraction <= rows[0].stranded_fraction

    def test_rack_scale_beats_2host_pods(self):
        # PR-8 acceptance: 32-host pods under the multi-headed port limit
        # strand less than the 2-host pods PRs 1-7 simulated.
        results = fig2.run(n_instances=1500, n_hosts=32,
                           pod_sizes=(1, 2), rack=True)
        rack = results["rack"]
        assert rack["pod_sizes"][-1] == 32
        for key in ("nic", "ssd"):
            rows = rack[key]
            assert rack[f"{key}_beats_2host"]
            assert rows[-1].stranded_fraction < rows[0].stranded_fraction
            assert rows[-1].devices_needed < rows[0].devices_needed
            # Port limit floor: a 32-host pod needs >= ceil(32/4) devices
            # no matter how low its pooled peak.
            assert rows[-1].devices_needed >= -(-32 // rack["port_limit"])


class TestFig3:
    def test_burstiness(self):
        results = fig3.run()
        host1 = results["hosts"][0]
        assert host1["p99_util"] < 0.05
        assert host1["p9999_util"] > 0.2
        # Host 3 is the near-idle one (paper: 0 %).
        assert results["hosts"][2]["p9999_util"] < 0.1


class TestTable2:
    def test_aggregated_well_below_per_host(self):
        racks = table2.run()
        for rack in ("A", "B"):
            per_host_max = max(racks[rack]["per_host"])
            assert racks[rack]["aggregated"] < per_host_max
        assert 0.05 <= racks["A"]["aggregated"] <= 0.18   # paper: 10 %
        assert 0.12 <= racks["B"]["aggregated"] <= 0.30   # paper: 20 %

    def test_rack_aggregation_beats_pairs(self):
        # PR-8 acceptance: pooling the whole 32-host rack behind shared
        # multi-headed NICs needs fewer devices than pairing hosts two at
        # a time (the 2-host pods earlier PRs simulated).
        racks = table2.run(rack=True)
        rack = racks["rack"]
        assert rack["hosts"] == 32
        assert rack["beats_pairs"]
        assert rack["nics_needed"] < rack["pair_nics_needed"]
        # The port limit floors the rack at ceil(32/4) = 8 shared NICs.
        assert rack["nics_needed"] >= 8
        # Rack-wide P99.99 sits well below the mean pairwise P99.99: the
        # non-coincident bursts that motivate pooling in the first place.
        assert rack["aggregated"] < rack["pair_mean_p9999"]


class TestFig6:
    def test_design_ordering(self):
        results = fig6.run(offered_mops=(2.0,), n_messages=6000, slots=2048)
        sat = {d: r.achieved_mops for d, r in results["saturation"].items()}
        assert sat["bypass-cache"] < sat["naive-prefetch"] \
            < sat["invalidate-consumed"]
        assert sat["invalidate-prefetched"] > 14.0


class TestOverheadExperiments:
    def test_fig8_overhead_band_one_app(self):
        profile = APP_PROFILES["nginx"]
        base = run_app(profile, "local", 0.2, duration_s=0.05)
        oasis = run_app(profile, "oasis", 0.2, duration_s=0.05)
        overhead = oasis["p50"] - base["p50"]
        assert 2.0 <= overhead <= 9.0

    def test_fig10_overhead_independent_of_size(self):
        results = fig10.run(sizes=(75, 1500),
                            loads={"low": 20_000.0}, duration_s=0.05)
        deltas = []
        for size in (75, 1500):
            cell = results[size]["low"]
            deltas.append(cell["oasis"]["p50"] - cell["baseline"]["p50"])
        assert all(2.0 <= d <= 9.0 for d in deltas)
        assert abs(deltas[0] - deltas[1]) < 2.0

    def test_fig11_messaging_dominates(self):
        results = fig11.run(sizes=(75,), loads={"low": 20_000.0},
                            duration_s=0.05)
        cell = results[75]["low"]
        buffer_cost = cell["local-cxl-buffers"]["p50"] - cell["local"]["p50"]
        messaging_cost = cell["oasis"]["p50"] - cell["local-cxl-buffers"]["p50"]
        assert buffer_cost < 1.0           # "almost no additional latency"
        assert messaging_cost > 2 * max(buffer_cost, 0.1)


class TestTable3:
    @pytest.fixture(scope="class")
    def results(self):
        return table3.run(duration_s=0.05)

    def test_idle_bandwidth_near_paper(self, results):
        assert results["idle"]["total_gbps"] == pytest.approx(0.2, abs=0.1)

    def test_payload_dominates_at_1500(self, results):
        row = results["busy_1500"]
        assert row["payload_gbps"] / row["total_gbps"] > 0.7   # paper: 89 %

    def test_message_dominates_at_75(self, results):
        row = results["busy_75"]
        assert row["message_gbps"] > row["payload_gbps"]


class TestFig12:
    def test_multiplexing_doubles_utilization(self):
        results = fig12.run(duration_s=0.08)
        base = results["baseline"]
        mux = results["multiplexed"]
        assert mux.nic_p9999_util > 1.5 * base.nic_p9999_util
        # Interference on host 1 stays small.
        assert mux.per_host[0]["p99"] - base.per_host[0]["p99"] < 15.0


class TestFailoverExperiments:
    def test_fig13_interruption_band(self):
        results = fig13.run(duration_s=1.2, rate_pps=3000, fail_at_s=0.602)
        assert 20.0 <= results["interruption_ms"] <= 60.0   # paper: 38 ms
        assert results["failovers"] == 1
        timeline = results["loss_timeline"]
        assert (timeline > 0).sum() <= 2    # a single loss burst

    def test_fig14_recovery_band(self):
        results = fig14.run(duration_s=1.6, rate_rps=2500, fail_at_s=0.802)
        assert 50.0 <= results["recovery_ms"] <= 250.0      # paper: 133 ms
        assert results["retransmits"] > 0
        # Recovery is slower than the raw UDP interruption (TCP backlog).
        assert results["recovery_ms"] > 38.0


class TestTable1:
    def test_runs(self):
        results = table1.run()
        assert results["ssd"]["bandwidth_gbs"] == pytest.approx(5.0)


class TestExperimentPlumbing:
    def test_scale_env_parsing(self, monkeypatch):
        from repro.experiments.common import scale

        monkeypatch.setenv("OASIS_SCALE", "0.25")
        assert scale() == 0.25
        monkeypatch.setenv("OASIS_SCALE", "garbage")
        assert scale(2.0) == 2.0
        monkeypatch.delenv("OASIS_SCALE")
        assert scale() == 1.0

    def test_build_echo_pod_variants(self):
        from repro.experiments.common import build_echo_pod

        pod, inst, client, nic = build_echo_pod("oasis", remote=True,
                                                backup_nic=True)
        assert inst.host is not nic.host
        assert any(d.is_backup for d in pod.allocator.devices.values())
        pod.stop()
        pod2, inst2, client2, nic2 = build_echo_pod("local", remote=False)
        assert inst2.host is nic2.host
        pod2.stop()
