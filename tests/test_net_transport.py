"""Tests for the datagram and reliable transports."""

import pytest

from repro.config import TransportConfig
from repro.net.packet import PROTO_TCP, PROTO_UDP, Frame
from repro.net.transport import FLAG_ACK, ReliableSocket, UdpSocket
from repro.sim.core import MSEC, Simulator


class FakeEndpoint:
    """A loopback wire between two endpoints with controllable loss."""

    def __init__(self, sim, ip, latency_s=1e-6):
        self.sim = sim
        self.ip = ip
        self.latency = latency_s
        self.peer = None
        self.handlers = []
        self.drop_all = False
        self.sent = 0

    def connect(self, peer):
        self.peer = peer
        peer.peer = self

    def send_frame(self, frame):
        self.sent += 1
        if frame.src_ip == 0:
            frame.src_ip = self.ip
        if self.drop_all:
            return
        self.sim.schedule(self.latency, self.peer._deliver, frame)

    def add_handler(self, fn):
        self.handlers.append(fn)

    def _deliver(self, frame):
        for fn in self.handlers:
            fn(frame)


@pytest.fixture
def pair(sim):
    a = FakeEndpoint(sim, ip=1)
    b = FakeEndpoint(sim, ip=2)
    a.connect(b)
    return a, b


class TestUdpSocket:
    def test_delivery_and_port_demux(self, sim, pair):
        a, b = pair
        sock_b = UdpSocket(sim, b, port=7)
        other = UdpSocket(sim, b, port=8)
        got, got_other = [], []
        sock_b.on_datagram(got.append)
        other.on_datagram(got_other.append)
        sock_a = UdpSocket(sim, a, port=100)
        sock_a.sendto(b"hi", dst_ip=2, dst_port=7)
        sim.run_all()
        assert len(got) == 1 and got[0].payload == b"hi"
        assert got_other == []

    def test_reply_reaches_sender(self, sim, pair):
        a, b = pair
        server = UdpSocket(sim, b, port=7)
        server.on_datagram(lambda f: server.reply(f, payload=b"pong"))
        client = UdpSocket(sim, a, port=100)
        got = []
        client.on_datagram(got.append)
        client.sendto(b"ping", dst_ip=2, dst_port=7, seq=5)
        sim.run_all()
        assert got[0].payload == b"pong"
        assert got[0].seq == 5

    def test_non_udp_ignored(self, sim, pair):
        a, b = pair
        sock = UdpSocket(sim, b, port=7)
        got = []
        sock.on_datagram(got.append)
        a.send_frame(Frame(dst_mac=0, src_mac=0, dst_ip=2, proto=PROTO_TCP,
                           dst_port=7))
        sim.run_all()
        assert got == []


class TestReliableSocket:
    def test_delivery_and_ack(self, sim, pair):
        a, b = pair
        rs_a = ReliableSocket(sim, a, port=10)
        rs_b = ReliableSocket(sim, b, port=20)
        got = []
        rs_b.on_message(got.append)
        rs_a.send(b"data", dst_ip=2, dst_port=20)
        sim.run_all()
        assert len(got) == 1
        assert rs_a.inflight == 0          # ack cancelled the timer
        assert rs_a.retransmits == 0

    def test_loss_triggers_retransmit(self, sim, pair):
        a, b = pair
        config = TransportConfig(initial_rto_ms=10.0, min_rto_ms=10.0)
        rs_a = ReliableSocket(sim, a, port=10, config=config)
        rs_b = ReliableSocket(sim, b, port=20, config=config)
        got = []
        rs_b.on_message(got.append)
        a.drop_all = True
        rs_a.send(b"data", dst_ip=2, dst_port=20)
        sim.run(until=5 * MSEC)
        assert got == []
        a.drop_all = False                 # "failover" completes
        sim.run_all()
        assert len(got) == 1
        assert rs_a.retransmits >= 1
        assert rs_a.inflight == 0

    def test_retransmit_backoff(self, sim, pair):
        a, b = pair
        config = TransportConfig(initial_rto_ms=10.0, min_rto_ms=10.0,
                                 rto_backoff=2.0, max_rto_ms=1000.0)
        rs_a = ReliableSocket(sim, a, port=10, config=config)
        ReliableSocket(sim, b, port=20, config=config)
        a.drop_all = True
        rs_a.send(b"data", dst_ip=2, dst_port=20)
        sim.run(until=35 * MSEC)
        # 10 ms, then 20 ms backoff: exactly 2 retransmits by t=35 ms.
        assert rs_a.retransmits == 2

    def test_gives_up_after_max_retries(self, sim, pair):
        a, b = pair
        config = TransportConfig(initial_rto_ms=1.0, min_rto_ms=1.0,
                                 rto_backoff=1.0, max_retries=3)
        rs_a = ReliableSocket(sim, a, port=10, config=config)
        gave_up = []
        rs_a.on_give_up(gave_up.append)
        a.drop_all = True
        seq = rs_a.send(b"data", dst_ip=2, dst_port=20)
        sim.run_all()
        assert gave_up == [seq]
        assert rs_a.inflight == 0

    def test_duplicate_suppression(self, sim, pair):
        """A late original + a retransmit must deliver exactly once."""
        a, b = pair
        config = TransportConfig(initial_rto_ms=1.0, min_rto_ms=1.0)
        rs_a = ReliableSocket(sim, a, port=10, config=config)
        rs_b = ReliableSocket(sim, b, port=20, config=config)
        got = []
        rs_b.on_message(got.append)
        # Delay delivery beyond the RTO so both copies arrive.
        a.latency = 2 * MSEC
        rs_a.send(b"data", dst_ip=2, dst_port=20)
        sim.run_all()
        assert len(got) == 1
        assert rs_b.received == 1

    def test_many_messages_all_delivered(self, sim, pair):
        a, b = pair
        rs_a = ReliableSocket(sim, a, port=10)
        rs_b = ReliableSocket(sim, b, port=20)
        got = []
        rs_b.on_message(got.append)
        for i in range(50):
            rs_a.send(bytes([i]), dst_ip=2, dst_port=20)
        sim.run_all()
        assert len(got) == 50

    def test_ack_frames_not_delivered_as_data(self, sim, pair):
        a, b = pair
        rs_a = ReliableSocket(sim, a, port=10)
        rs_b = ReliableSocket(sim, b, port=20)
        got_a, got_b = [], []
        rs_a.on_message(got_a.append)
        rs_b.on_message(got_b.append)
        rs_a.send(b"x", dst_ip=2, dst_port=20)
        sim.run_all()
        assert len(got_b) == 1 and got_a == []
