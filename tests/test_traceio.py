"""Tests for trace persistence and instance-to-instance traffic."""

import numpy as np
import pytest

from repro.core.pod import CXLPod
from repro.net.packet import make_ip
from repro.net.transport import UdpSocket
from repro.workloads.allocation import generate_allocation_trace
from repro.workloads.stranding import schedule_trace
from repro.workloads.traceio import (
    load_allocation_trace,
    load_packet_trace,
    save_allocation_trace,
    save_packet_trace,
)
from repro.workloads.traces import RACK_A_PARAMS, generate_trace


class TestPacketTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(RACK_A_PARAMS[0], np.random.default_rng(1))
        path = tmp_path / "trace.npz"
        save_packet_trace(trace, path)
        loaded = load_packet_trace(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.sizes, trace.sizes)
        assert loaded.params.nic_gbps == trace.params.nic_gbps
        assert loaded.duration_s == trace.duration_s

    def test_loaded_trace_usable_for_analysis(self, tmp_path):
        trace = generate_trace(RACK_A_PARAMS[0], np.random.default_rng(1))
        path = tmp_path / "trace.npz"
        save_packet_trace(trace, path)
        loaded = load_packet_trace(path)
        assert loaded.utilization_percentile(99.99) == pytest.approx(
            trace.utilization_percentile(99.99))

    def test_unsorted_input_is_sorted_on_load(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, times=np.array([0.3, 0.1, 0.2]),
                 sizes=np.array([1, 2, 3]), duration_s=1.0, nic_gbps=100.0)
        loaded = load_packet_trace(path)
        assert list(loaded.times) == [0.1, 0.2, 0.3]
        assert list(loaded.sizes) == [2, 3, 1]


class TestAllocationTraceIO:
    def test_roundtrip_preserves_placement(self, tmp_path):
        trace = generate_allocation_trace(n_instances=200,
                                          rng=np.random.default_rng(2))
        schedule_trace(trace, 8)
        path = tmp_path / "alloc.csv"
        save_allocation_trace(trace, path)
        loaded = load_allocation_trace(path)
        assert len(loaded.instances) == 200
        for orig, got in zip(trace.instances, loaded.instances):
            assert got.host == orig.host
            assert got.cores == pytest.approx(orig.cores)
            assert got.nic_gbps == pytest.approx(orig.nic_gbps)
            assert got.family == orig.family

    def test_unplaced_instances_roundtrip_as_none(self, tmp_path):
        trace = generate_allocation_trace(n_instances=50,
                                          rng=np.random.default_rng(2))
        path = tmp_path / "alloc.csv"
        save_allocation_trace(trace, path)   # never scheduled: host=None
        loaded = load_allocation_trace(path)
        assert all(i.host is None for i in loaded.instances)


class TestInstanceToInstanceTraffic:
    def test_two_instances_on_different_hosts_exchange_datagrams(self):
        """East-west pod traffic: both ends ride Oasis-pooled NICs."""
        pod = CXLPod(mode="oasis")
        h0, h1 = pod.add_host(), pod.add_host()
        nic0, nic1 = pod.add_nic(h0), pod.add_nic(h1)
        ip_a, ip_b = make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2)
        # Cross placement: each instance uses the *other* host's NIC.
        inst_a = pod.add_instance(h0, ip=ip_a, nic=nic1)
        inst_b = pod.add_instance(h1, ip=ip_b, nic=nic0)
        sock_a = UdpSocket(pod.sim, inst_a, port=100)
        sock_b = UdpSocket(pod.sim, inst_b, port=200)
        got_a, got_b = [], []
        sock_a.on_datagram(got_a.append)
        sock_b.on_datagram(lambda f: (got_b.append(f),
                                      sock_b.reply(f, payload=b"pong")))
        for i in range(20):
            sock_a.sendto(b"ping", ip_b, 200, seq=i)
        pod.run(0.02)
        assert len(got_b) == 20
        assert len(got_a) == 20
        assert got_a[0].payload == b"pong"
        assert nic0.tx_frames > 0 and nic1.tx_frames > 0
