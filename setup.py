"""Shim for environments without the `wheel` package (pip -e fallback)."""
from setuptools import setup

setup()
